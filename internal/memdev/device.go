package memdev

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/ecc"
	"mrm/internal/fault"
	"mrm/internal/units"
)

// AccessKind distinguishes reads from writes.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

// String names the kind.
func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Result reports the cost of one access.
type Result struct {
	Latency time.Duration // first-byte latency + transfer time
	Energy  units.Energy
	// RawBER is the expected raw bit error rate of the data returned by a
	// read (0 for writes): it reflects wear of the touched blocks and, for
	// managed devices, time since the data was written.
	RawBER float64
}

// EnergyBreakdown accumulates device energy by component.
type EnergyBreakdown struct {
	Read    units.Energy
	Write   units.Energy
	Refresh units.Energy
	Static  units.Energy
}

// Total sums all components.
func (e EnergyBreakdown) Total() units.Energy {
	return e.Read + e.Write + e.Refresh + e.Static
}

// superBlocks is the number of wear blocks summarized by one superblock
// aggregate. Reads consult the aggregates to skip whole superblocks whose
// BER ceiling cannot beat the worst block seen so far; 64 keeps the aggregate
// arrays small while making the typical weight-sized scan ~64x shorter.
const superBlocks = 64

// The BER hot path caches the two expensive RawBER terms separately in
// direct-mapped tables. cellphys.RawBER decomposes exactly into
// floor + WearBERTerm(cycles) + DecayBERTerm(age) (clamped, terms added in
// that order — pinned by cellphys.TestRawBERTermDecompositionExact), and the
// two inputs repeat on different schedules: wear values recur across blocks
// written together (weights are written once; interior blocks all sit at the
// same cycle count), while ages recur within a read because many blocks share
// a lastWrite stamp even as d.now advances every step. Caching each term on
// its own key therefore hits where a combined (cycles, age) memo thrashes.
// A hit returns the exact float the direct call would, so caching never
// changes a computed number.
const (
	berCacheBits = 13
	berCacheSize = 1 << berCacheBits
)

// berTermEnt is one direct-mapped cache slot: a raw 64-bit key (float bits
// for wear, duration ticks for decay) and the cached term value.
type berTermEnt struct {
	key uint64
	val float64
	ok  bool
}

// berCacheIdx maps a key to its direct-mapped slot (fibonacci hashing).
func berCacheIdx(key uint64) int {
	return int((key * 0x9e3779b97f4a7c15) >> (64 - berCacheBits))
}

// Device simulates one memory device instance. It charges latency and energy
// per access, tracks per-block wear, and integrates background (static +
// refresh) power over simulated time via Advance. Device is safe for
// concurrent use.
type Device struct {
	spec      Spec
	wearBlock units.Bytes // granularity at which wear is tracked
	// wearShift is log2(wearBlock) when the block size is a power of two,
	// else -1. Block-range mapping runs once per span on the read hot path;
	// the shift replaces two 64-bit divisions there.
	wearShift int

	mu         sync.Mutex
	now        time.Duration           // simulated device-local time; guarded by mu
	wear       []float64               // write cycles per wear block; guarded by mu
	lastWrite  []time.Duration         // guarded by mu
	energy     EnergyBreakdown         // guarded by mu
	reads      uint64                  // guarded by mu
	writes     uint64                  // guarded by mu
	readBytes  units.Bytes             // guarded by mu
	writeBytes units.Bytes             // guarded by mu
	berParams  cellphys.RawBERParams   // immutable after NewDevice
	op         cellphys.OperatingPoint // fixed operating point from the spec; immutable

	// Superblock aggregates for read-path pruning. sbMaxWear[s] is the exact
	// maximum wear over superblock s (wear only grows, so a max-update on
	// every write keeps it exact). sbMinLastWrite[s] is a conservative lower
	// bound on the minimum lastWrite (lastWrite only moves forward, so a
	// stale bound over-estimates age, over-estimates the BER ceiling, and
	// pruning stays exact); it is tightened to the true minimum whenever a
	// read scans the full superblock, and set exactly when a write covers it.
	sbMaxWear      []float64                // guarded by mu
	sbMinLastWrite []time.Duration          // guarded by mu
	wearTerms      [berCacheSize]berTermEnt // wear-term RawBER cache; guarded by mu
	decayTerms     [berCacheSize]berTermEnt // decay-term RawBER cache; guarded by mu

	// Rolling memo of the pure per-size read cost. KV paging makes almost
	// every span on the read hot path the same size, and the latency/energy
	// arithmetic (float divide + two conversions per span) shows up in
	// profiles; the memo is a pure function of size, so results are
	// bit-identical. Zero size never reaches readLocked (blockRange rejects
	// it), so lastReadSize == 0 means "empty". Misses fall through to
	// readCosts, a small recently-used table that absorbs the steady
	// alternation between the weights read's size and the KV page size (one
	// rolling entry alone thrashes twice per decode step).
	lastReadSize   units.Bytes      // guarded by mu
	lastReadLat    time.Duration    // guarded by mu
	lastReadEnergy units.Energy     // guarded by mu
	readCosts      [4]readCostEntry // guarded by mu

	// trackBER controls whether reads evaluate the worst-block raw BER when no
	// ECC budget forces it (SetBERTracking). On by default; callers that never
	// consume Result.RawBER turn it off to skip the scan entirely. With an ECC
	// budget armed (maxBER > 0) the scan always runs — the organic-fault check
	// needs it — so fault decisions are identical either way.
	trackBER bool // guarded by mu

	// Fault injection (SetFaults). All decisions are pure functions of the
	// fault seed and the read/write counters, so a device's fault sequence is
	// deterministic regardless of goroutine scheduling.
	maxBER     float64         // ECC correction ceiling; 0 disables the check; guarded by mu
	transient  *fault.Injector // guarded by mu
	lapse      *fault.Injector // guarded by mu
	writeFault *fault.Injector // guarded by mu
	// readInjecting/writeInjecting cache whether any injector on that path is
	// armed: Hit is not inlinable (it hashes), so the unarmed hot path would
	// otherwise pay two calls per read just to learn nothing fires.
	readInjecting  bool   // guarded by mu
	writeInjecting bool   // guarded by mu
	uncorrectable  uint64 // total reads returning ErrUncorrectable; guarded by mu
	transients     uint64 // guarded by mu
	lapses         uint64 // guarded by mu
	writeFaults    uint64 // writes returning ErrUncorrectable; guarded by mu
}

// NewDevice creates a device from spec. Wear is tracked per spec.BlockSize
// (or per 2 MiB for byte-addressable devices).
func NewDevice(spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	wb := spec.BlockSize
	if wb == 0 {
		wb = 2 * units.MiB
	}
	n := (spec.Capacity + wb - 1) / wb
	if n == 0 {
		n = 1
	}
	tr := cellphys.ForTechnology(spec.Tech)
	// Derive the fixed operating point implied by the spec: its retention
	// clamped into the technology's legal range.
	ret := spec.Retention
	if ret < tr.MinRetention {
		ret = tr.MinRetention
	}
	if ret > tr.MaxRetention {
		ret = tr.MaxRetention
	}
	op := tr.MustAt(ret)
	// Trust the spec sheet's endurance over the generic curve: products bin
	// and derate cells in ways the curve cannot know.
	op.Endurance = spec.Endurance
	nsb := (int(n) + superBlocks - 1) / superBlocks
	shift := -1
	if wb&(wb-1) == 0 {
		shift = bits.TrailingZeros64(uint64(wb))
	}
	return &Device{
		spec:           spec,
		wearBlock:      wb,
		wearShift:      shift,
		wear:           make([]float64, n),
		lastWrite:      make([]time.Duration, n),
		sbMaxWear:      make([]float64, nsb),
		sbMinLastWrite: make([]time.Duration, nsb),
		berParams:      cellphys.DefaultBER,
		op:             op,
		trackBER:       true,
	}, nil
}

// Spec returns the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// FaultConfig arms a device's fault-injection path. The zero value disables
// everything; drivers that never call SetFaults are byte-identical to the
// pre-fault simulator.
type FaultConfig struct {
	// Seed drives the injected-fault streams; decisions are pure functions
	// of (Seed, stream, read index).
	Seed uint64
	// Code and UBERTarget define the device's ECC plan: reads whose
	// worst-block raw BER exceeds Code.MaxBERForUBER(UBERTarget) surface as
	// fault.ErrUncorrectable — the organic failure path where wear or age
	// outruns the code. A zero Code (N == 0) or UBERTarget disables the
	// threshold.
	Code       ecc.CodeSpec
	UBERTarget float64
	// TransientRate is the per-read probability of a transient uncorrectable
	// fault (particle strike, read disturb).
	TransientRate float64
	// LapseRate is the per-read probability that the touched data's
	// retention lapsed before the scrubber reached it: the managed-retention
	// failure mode §4 argues ECC must absorb.
	LapseRate float64
	// WriteFaultRate is the per-write probability of a program failure: the
	// write is charged (latency, energy, wear) but the data did not latch,
	// and the write surfaces fault.ErrUncorrectable so the layer above can
	// retry or degrade at write time.
	WriteFaultRate float64
}

// SetFaults installs (or, with a zero config, removes) fault injection.
func (d *Device) SetFaults(cfg FaultConfig) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.maxBER = 0
	if cfg.Code.N > 0 && cfg.UBERTarget > 0 {
		d.maxBER = cfg.Code.MaxBERForUBER(cfg.UBERTarget)
	}
	d.transient = fault.NewInjector(cfg.Seed, cfg.TransientRate)
	d.lapse = fault.NewInjector(cfg.Seed, cfg.LapseRate)
	d.writeFault = fault.NewInjector(cfg.Seed, cfg.WriteFaultRate)
	d.readInjecting = d.transient != nil || d.lapse != nil
	d.writeInjecting = d.writeFault != nil
}

// SetBERTracking enables or disables the read path's worst-block BER scan
// when no ECC budget requires it. Everything else a read does — latency,
// energy, counters, injected-fault decisions — is untouched; only
// Result.RawBER becomes 0 while tracking is off and no budget is armed.
// Organic fault checks are unaffected: an armed ECC budget (SetFaults with a
// Code) forces the scan regardless of this setting.
func (d *Device) SetBERTracking(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trackBER = on
}

// Now returns the device-local simulated time.
func (d *Device) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// Advance moves simulated time forward, charging static and refresh energy
// for the elapsed window. It is an error to move time backwards.
func (d *Device) Advance(dt time.Duration) error {
	if dt < 0 {
		return fmt.Errorf("memdev: cannot advance time by %v", dt)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now += dt
	d.energy.Static += d.spec.StaticPower.Over(dt)
	d.energy.Refresh += d.spec.RefreshPower().Over(dt)
	return nil
}

func (d *Device) blockRange(addr, size units.Bytes) (first, last int, err error) {
	if size == 0 {
		return 0, 0, fmt.Errorf("memdev: zero-size access")
	}
	if addr+size > d.spec.Capacity {
		return 0, 0, fmt.Errorf("memdev: access [%d, %d) beyond capacity %v",
			addr, addr+size, d.spec.Capacity)
	}
	if d.wearShift >= 0 {
		return int(addr >> uint(d.wearShift)), int((addr + size - 1) >> uint(d.wearShift)), nil
	}
	first = int(addr / d.wearBlock)
	last = int((addr + size - 1) / d.wearBlock)
	return first, last, nil
}

// ReadAt performs a read of size bytes at addr and returns its cost. With
// fault injection armed (SetFaults), a read whose raw BER exceeds the ECC
// plan's budget — organically, or via an injected transient fault or
// retention lapse — returns fault.ErrUncorrectable alongside the cost: the
// access happened and is charged, but the data is lost and the caller must
// degrade (drop + recompute soft state, restore durable state).
func (d *Device) ReadAt(addr, size units.Bytes) (Result, error) {
	first, last, err := d.blockRange(addr, size)
	if err != nil {
		return Result{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readLocked(addr, size, first, last)
}

// Span is one contiguous device access: size bytes starting at addr.
type Span struct {
	Addr, Size units.Bytes
}

// readCostEntry is one slot of the per-size read-cost table: the latency and
// energy of a read of exactly Size bytes (pure functions of the spec).
type readCostEntry struct {
	size units.Bytes
	lat  time.Duration
	e    units.Energy
}

// readCostLocked returns the latency and energy of a size-byte read through
// the recently-used table, computing and remembering the cost on a miss. A
// hit returns the identical floats the direct arithmetic would. Caller holds
// d.mu; size is never zero (blockRange and the fast path reject it first).
func (d *Device) readCostLocked(size units.Bytes) (time.Duration, units.Energy) {
	for i := range d.readCosts {
		if c := &d.readCosts[i]; c.size == size {
			return c.lat, c.e
		}
	}
	lat := d.spec.ReadLatency + d.spec.ReadBW.Time(size)
	e := d.spec.ReadEnergyPerBit.PerBit(size)
	copy(d.readCosts[1:], d.readCosts[:len(d.readCosts)-1])
	d.readCosts[0] = readCostEntry{size: size, lat: lat, e: e}
	return lat, e
}

// ReadSpans performs the reads described by spans exactly as if ReadAt were
// called once per span in order — each span is a distinct logical read with
// its own latency, energy, worst BER, read-counter increment, and fault
// check — but under a single lock acquisition. results[i] (len(results) must
// be >= len(spans)) receives span i's cost. It returns the index of the
// first span that failed (with its error; results[done] still carries the
// charged cost of an uncorrectable read), or (len(spans), nil) when every
// span succeeded. Spans after a failure are not charged, matching a caller
// that stops issuing ReadAt calls at the first error.
func (d *Device) ReadSpans(spans []Span, results []Result) (int, error) {
	if len(results) < len(spans) {
		return 0, fmt.Errorf("memdev: ReadSpans: %d results for %d spans", len(results), len(spans))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readSpansLocked(spans, results)
}

// ReadSpansQuiet is ReadSpans without per-span cost reporting: identical
// device state — energy, counters, wear-derived BER decisions, fault-stream
// positions, error at the first failing span — with the Result stores
// skipped. It exists for the tier read path, which sizes a scratch Result
// buffer it never reads (the simulator consumes read costs through the
// manager's per-tier byte totals, not per span); dropping the stores takes a
// measurable slice out of the KV-read hot loop.
func (d *Device) ReadSpansQuiet(spans []Span) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readSpansLocked(spans, nil)
}

// readSpansLocked charges every span in order, storing span costs into
// results when non-nil. With no fault injection armed, no ECC budget, and BER
// tracking off, a read's only effects are its memoized per-size cost and the
// counters — the fast loop below charges exactly those, in the same order,
// without touching the wear arrays (blockRange's range is only consumed by
// the BER scan and the error text, and the fast loop re-checks the same
// bounds). Caller holds d.mu.
func (d *Device) readSpansLocked(spans []Span, results []Result) (int, error) {
	if !d.readInjecting && d.maxBER == 0 && !d.trackBER {
		capacity := d.spec.Capacity
		size, lat, e := d.lastReadSize, d.lastReadLat, d.lastReadEnergy
		eAcc, reads, readBytes := d.energy.Read, d.reads, d.readBytes
		for i, sp := range spans {
			if sp.Size == 0 || sp.Addr+sp.Size > capacity {
				// Rare: surface blockRange's exact error with the slow path's
				// partial charge (spans before i are charged, i is not).
				d.lastReadSize, d.lastReadLat, d.lastReadEnergy = size, lat, e
				d.energy.Read, d.reads, d.readBytes = eAcc, reads, readBytes
				if results != nil {
					results[i] = Result{}
				}
				_, _, err := d.blockRange(sp.Addr, sp.Size)
				return i, err
			}
			if sp.Size != size {
				size = sp.Size
				lat, e = d.readCostLocked(size)
			}
			eAcc += e
			reads++
			readBytes += size
			if results != nil {
				results[i] = Result{Latency: lat, Energy: e}
			}
		}
		d.lastReadSize, d.lastReadLat, d.lastReadEnergy = size, lat, e
		d.energy.Read, d.reads, d.readBytes = eAcc, reads, readBytes
		return len(spans), nil
	}
	for i, sp := range spans {
		first, last, err := d.blockRange(sp.Addr, sp.Size)
		if err != nil {
			if results != nil {
				results[i] = Result{}
			}
			return i, err
		}
		res, err := d.readLocked(sp.Addr, sp.Size, first, last)
		if results != nil {
			results[i] = res
		}
		if err != nil {
			return i, err
		}
	}
	return len(spans), nil
}

// readLocked charges one logical read over blocks [first, last] and runs its
// fault checks. Caller holds d.mu.
func (d *Device) readLocked(addr, size units.Bytes, first, last int) (Result, error) {
	if size != d.lastReadSize {
		d.lastReadSize = size
		d.lastReadLat, d.lastReadEnergy = d.readCostLocked(size)
	}
	lat := d.lastReadLat
	e := d.lastReadEnergy
	d.energy.Read += e
	d.reads++
	d.readBytes += size
	// The worst-BER scan is the read path's dominant cost; it only matters
	// when an ECC budget gates the read or the caller consumes Result.RawBER.
	var worst float64
	if d.maxBER > 0 || d.trackBER {
		worst = d.worstBERLocked(first, last)
	}
	res := Result{Latency: lat, Energy: e, RawBER: worst}
	if d.readInjecting {
		event := d.reads // monotone, deterministic event index for this read
		if d.transient.Hit(fault.StreamTransient, event) {
			d.transients++
			d.uncorrectable++
			return res, fmt.Errorf("memdev: %s: transient fault on read %d at [%d, %d): %w",
				d.spec.Name, event, addr, addr+size, fault.ErrUncorrectable)
		}
		if d.lapse.Hit(fault.StreamLapse, event) {
			d.lapses++
			d.uncorrectable++
			return res, fmt.Errorf("memdev: %s: retention lapse on read %d at [%d, %d): %w",
				d.spec.Name, event, addr, addr+size, fault.ErrUncorrectable)
		}
	}
	if d.maxBER > 0 && worst > d.maxBER {
		d.uncorrectable++
		return res, fmt.Errorf("memdev: %s: raw BER %.3g exceeds ECC budget %.3g at [%d, %d): %w",
			d.spec.Name, worst, d.maxBER, addr, addr+size, fault.ErrUncorrectable)
	}
	return res, nil
}

// rawBER evaluates cellphys.RawBER for a block with the given wear cycles and
// age, recombining the per-term caches exactly as cellphys.RawBER adds its
// terms: floor + wear + decay, clamped at 0.5. Caller holds d.mu.
func (d *Device) rawBERLocked(cycles float64, age time.Duration) float64 {
	ber := d.berParams.Floor + d.wearTermLocked(cycles) + d.decayTermLocked(age)
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// wearTerm returns cellphys.WearBERTerm(d.op, cycles, d.berParams) through
// the direct-mapped cache; a hit returns the identical float. Caller holds
// d.mu.
func (d *Device) wearTermLocked(cycles float64) float64 {
	if cycles <= 0 || d.op.Endurance <= 0 {
		return 0
	}
	key := math.Float64bits(cycles)
	e := &d.wearTerms[berCacheIdx(key)]
	if e.ok && e.key == key {
		return e.val
	}
	v := cellphys.WearBERTerm(d.op, cycles, d.berParams)
	*e = berTermEnt{key: key, val: v, ok: true}
	return v
}

// decayTerm returns cellphys.DecayBERTerm(d.op, age, d.berParams) through the
// direct-mapped cache; a hit returns the identical float. Caller holds d.mu.
func (d *Device) decayTermLocked(age time.Duration) float64 {
	if age <= 0 || d.op.Retention <= 0 {
		return 0
	}
	key := uint64(age)
	e := &d.decayTerms[berCacheIdx(key)]
	if e.ok && e.key == key {
		return e.val
	}
	v := cellphys.DecayBERTerm(d.op, age, d.berParams)
	*e = berTermEnt{key: key, val: v, ok: true}
	return v
}

// worstBERLocked reports the exact maximum RawBER over blocks [first, last].
// It walks the range superblock by superblock: for a fully-covered superblock
// it first evaluates the BER ceiling at the aggregate (max wear, max age)
// corner — by RawBER's monotonicity contract no block inside can exceed it —
// and skips the superblock outright when the ceiling cannot beat the worst
// block already seen (ties are safe to skip: a block equal to the current
// worst leaves the maximum unchanged). Only superblocks whose ceiling is
// competitive are scanned block by block, so a uniform weight-sized read
// costs O(superblocks) instead of O(blocks) while reporting the identical
// worst BER. Caller holds d.mu.
func (d *Device) worstBERLocked(first, last int) float64 {
	worst := 0.0
	lastIdx := len(d.wear) - 1
	// Last-value memo: blocks written by one WriteAt share (wear, lastWrite),
	// so runs of identical inputs skip even the term-cache lookups. rawBER is a
	// pure function of its inputs, so the memo returns the identical float.
	var memoCyc float64
	var memoAge time.Duration
	var memoBER float64
	memoOK := false
	blockBER := func(cycles float64, age time.Duration) float64 {
		if memoOK && cycles == memoCyc && age == memoAge {
			return memoBER
		}
		v := d.rawBERLocked(cycles, age)
		memoCyc, memoAge, memoBER, memoOK = cycles, age, v, true
		return v
	}
	for b := first; b <= last; {
		sb := b / superBlocks
		sbFirst := sb * superBlocks
		sbLast := min(sbFirst+superBlocks-1, lastIdx)
		if b == sbFirst && sbLast <= last {
			// Fully-covered superblock: try to prune via the ceiling.
			maxAge := d.now - d.sbMinLastWrite[sb]
			if maxAge < 0 {
				maxAge = 0
			}
			bound := d.rawBERLocked(d.sbMaxWear[sb], maxAge)
			if bound <= worst {
				b = sbLast + 1
				continue
			}
			// Scan, tightening the lastWrite bound to the true minimum so the
			// next read's ceiling is tighter.
			minLW := d.lastWrite[b]
			for i := b; i <= sbLast; i++ {
				if lw := d.lastWrite[i]; lw < minLW {
					minLW = lw
				}
				age := d.now - d.lastWrite[i]
				if age < 0 {
					age = 0
				}
				if ber := blockBER(d.wear[i], age); ber > worst {
					worst = ber
				}
			}
			d.sbMinLastWrite[sb] = minLW
			b = sbLast + 1
			continue
		}
		// Partial superblock at the range edge: scan it directly.
		end := min(sbLast, last)
		for i := b; i <= end; i++ {
			age := d.now - d.lastWrite[i]
			if age < 0 {
				age = 0
			}
			if ber := blockBER(d.wear[i], age); ber > worst {
				worst = ber
			}
		}
		b = end + 1
	}
	return worst
}

// WriteAt performs a write of size bytes at addr, wearing the touched blocks.
// With fault injection armed (SetFaults), a write hit by the program-failure
// process returns fault.ErrUncorrectable alongside the cost: the pulse
// happened and is fully charged (latency, energy, wear), but the data did not
// latch and the caller must retry elsewhere or degrade.
func (d *Device) WriteAt(addr, size units.Bytes) (Result, error) {
	first, last, err := d.blockRange(addr, size)
	if err != nil {
		return Result{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeLocked(addr, size, first, last)
}

// WriteSpans performs the writes described by spans exactly as if WriteAt
// were called once per span in order — each span is a distinct logical write
// with its own latency, energy, wear charging, write-counter increment, and
// fault check — but under a single lock acquisition, with the superblock
// wear-aggregate folding batched across each span's interior blocks.
// results[i] (len(results) must be >= len(spans)) receives span i's cost. It
// returns the index of the first span that failed (with its error;
// results[done] still carries the charged cost of a faulted write), or
// (len(spans), nil) when every span succeeded. Spans after a failure are not
// charged, matching a caller that stops issuing WriteAt calls at the first
// error.
func (d *Device) WriteSpans(spans []Span, results []Result) (int, error) {
	if len(results) < len(spans) {
		return 0, fmt.Errorf("memdev: WriteSpans: %d results for %d spans", len(results), len(spans))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, sp := range spans {
		first, last, err := d.blockRange(sp.Addr, sp.Size)
		if err != nil {
			results[i] = Result{}
			return i, err
		}
		res, err := d.writeLocked(sp.Addr, sp.Size, first, last)
		results[i] = res
		if err != nil {
			return i, err
		}
	}
	return len(spans), nil
}

// writeLocked charges one logical write over blocks [first, last] and runs
// its fault check. Caller holds d.mu.
func (d *Device) writeLocked(addr, size units.Bytes, first, last int) (Result, error) {
	lat := d.spec.WriteLatency + d.spec.WriteBW.Time(size)
	e := d.spec.WriteEnergyPerBit.PerBit(size)
	d.energy.Write += e
	d.writes++
	d.writeBytes += size
	// Charge fractional wear proportional to how much of the block the write
	// covers, so small writes do not count as full-block cycles. Only the two
	// edge blocks can be partially covered; every interior block's coverage
	// is exactly wearBlock, so its update is wear += 1.0 — bit-identical to
	// overlap(...)/wearBlock without computing either. The same pass keeps
	// the superblock max-wear aggregates exact (wear only grows, so folding
	// each touched block into a running max preserves the true maximum).
	curSB := -1
	curMax := 0.0
	for b := first; b <= last; b++ {
		if sb := b / superBlocks; sb != curSB {
			if curSB >= 0 && curMax > d.sbMaxWear[curSB] {
				d.sbMaxWear[curSB] = curMax
			}
			curSB, curMax = sb, d.sbMaxWear[sb]
		}
		if b == first || b == last {
			bStart := units.Bytes(b) * d.wearBlock
			cover := overlap(addr, addr+size, bStart, bStart+d.wearBlock)
			d.wear[b] += float64(cover) / float64(d.wearBlock)
		} else {
			d.wear[b]++
		}
		if d.wear[b] > curMax {
			curMax = d.wear[b]
		}
		d.lastWrite[b] = d.now
	}
	if curSB >= 0 && curMax > d.sbMaxWear[curSB] {
		d.sbMaxWear[curSB] = curMax
	}
	// A superblock fully inside the write has every lastWrite set to now, so
	// its min-lastWrite bound becomes exactly now; partially-covered edge
	// superblocks keep their old (still conservative) bound.
	lastIdx := len(d.wear) - 1
	for sb := first / superBlocks; sb <= last/superBlocks; sb++ {
		sbFirst := sb * superBlocks
		sbLast := min(sbFirst+superBlocks-1, lastIdx)
		if sbFirst >= first && sbLast <= last {
			d.sbMinLastWrite[sb] = d.now
		}
	}
	res := Result{Latency: lat, Energy: e}
	if d.writeInjecting {
		event := d.writes // monotone, deterministic event index for this write
		if d.writeFault.Hit(fault.StreamWriteFault, event) {
			d.writeFaults++
			return res, fmt.Errorf("memdev: %s: program failure on write %d at [%d, %d): %w",
				d.spec.Name, event, addr, addr+size, fault.ErrUncorrectable)
		}
	}
	return res, nil
}

func overlap(a0, a1, b0, b1 units.Bytes) units.Bytes {
	lo, hi := max(a0, b0), min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// WearSummary reports wear statistics across blocks.
type WearSummary struct {
	MaxCycles  float64
	MeanCycles float64
	// LifeUsed is MaxCycles / endurance: the fraction of device life consumed
	// at the most-worn block.
	LifeUsed float64
}

// Wear returns the current wear summary.
func (d *Device) Wear() WearSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	var maxC, sum float64
	for _, c := range d.wear {
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	mean := sum / float64(len(d.wear))
	return WearSummary{
		MaxCycles:  maxC,
		MeanCycles: mean,
		LifeUsed:   maxC / d.spec.Endurance,
	}
}

// Energy returns the accumulated energy breakdown.
func (d *Device) Energy() EnergyBreakdown {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energy
}

// Stats reports access counts, bytes moved, and fault events (the counters
// the fault reports aggregate per tier).
type Stats struct {
	Reads, Writes         uint64
	ReadBytes, WriteBytes units.Bytes
	// Uncorrectable is the total reads that returned fault.ErrUncorrectable;
	// TransientFaults and RetentionLapses break out the injected causes (the
	// remainder crossed the ECC BER budget organically).
	Uncorrectable   uint64
	TransientFaults uint64
	RetentionLapses uint64
	// WriteFaults is the total writes that returned fault.ErrUncorrectable
	// (injected program failures); write faults are counted separately from
	// Uncorrectable, which is read-side by definition.
	WriteFaults uint64
}

// Stats returns the access statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Reads: d.reads, Writes: d.writes,
		ReadBytes: d.readBytes, WriteBytes: d.writeBytes,
		Uncorrectable:   d.uncorrectable,
		TransientFaults: d.transients,
		RetentionLapses: d.lapses,
		WriteFaults:     d.writeFaults,
	}
}
