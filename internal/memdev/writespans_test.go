package memdev

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mrm/internal/fault"
	"mrm/internal/units"
)

// TestWriteSpansMatchesSequentialWriteAt drives two identical fault-armed
// devices through the same logical writes — one call-by-call, one batched —
// and requires identical costs, errors, fault counters, and full wear state.
// This is the write-side mirror of TestReadSpansMatchesSequentialReadAt: the
// contract that lets the layers above coalesce KV-page appends without
// perturbing any seeded golden output.
func TestWriteSpansMatchesSequentialWriteAt(t *testing.T) {
	mk := func() *Device {
		spec := HBM3E
		spec.Capacity = 64 * units.MiB
		d := newTestDevice(t, spec)
		d.SetFaults(FaultConfig{
			Seed:           99,
			WriteFaultRate: 0.05,
		})
		return d
	}
	seq, bat := mk(), mk()
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(16)
		spans := make([]Span, n)
		for i := range spans {
			addr := units.Bytes(rng.Int63n(int64(seq.spec.Capacity - 4096)))
			spans[i] = Span{Addr: addr, Size: 1 + units.Bytes(rng.Int63n(4096))}
		}
		// Sequential reference: stop at first error.
		seqResults := make([]Result, n)
		seqDone, seqErr := n, error(nil)
		for i, sp := range spans {
			res, err := seq.WriteAt(sp.Addr, sp.Size)
			seqResults[i] = res
			if err != nil {
				seqDone, seqErr = i, err
				break
			}
		}
		batResults := make([]Result, n)
		batDone, batErr := bat.WriteSpans(spans, batResults)
		if batDone != seqDone {
			t.Fatalf("round %d: WriteSpans done %d, sequential %d", round, batDone, seqDone)
		}
		if (batErr == nil) != (seqErr == nil) ||
			(batErr != nil && batErr.Error() != seqErr.Error()) {
			t.Fatalf("round %d: WriteSpans err %v, sequential %v", round, batErr, seqErr)
		}
		upto := seqDone
		if seqErr != nil {
			upto++ // the failing write's cost is reported too
		}
		for i := 0; i < upto; i++ {
			if batResults[i] != seqResults[i] {
				t.Fatalf("round %d span %d: %+v != %+v", round, i, batResults[i], seqResults[i])
			}
		}
		if gs, gb := seq.Stats(), bat.Stats(); gs != gb {
			t.Fatalf("round %d: stats diverged: %+v != %+v", round, gs, gb)
		}
		if es, eb := seq.Energy(), bat.Energy(); es != eb {
			t.Fatalf("round %d: energy diverged: %+v != %+v", round, es, eb)
		}
		// Wear state must be bit-identical too: per-block wear and lastWrite,
		// and the superblock aggregates the read path prunes with.
		for b := range seq.wear {
			if seq.wear[b] != bat.wear[b] || seq.lastWrite[b] != bat.lastWrite[b] {
				t.Fatalf("round %d block %d: wear (%v, %v) != (%v, %v)", round, b,
					seq.wear[b], seq.lastWrite[b], bat.wear[b], bat.lastWrite[b])
			}
		}
		for sb := range seq.sbMaxWear {
			if seq.sbMaxWear[sb] != bat.sbMaxWear[sb] ||
				seq.sbMinLastWrite[sb] != bat.sbMinLastWrite[sb] {
				t.Fatalf("round %d superblock %d aggregates diverged", round, sb)
			}
		}
		// Advance both clocks so lastWrite stamps vary across rounds.
		dt := time.Duration(rng.Int63n(int64(10 * time.Minute)))
		if err := seq.Advance(dt); err != nil {
			t.Fatal(err)
		}
		if err := bat.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteSpansValidation(t *testing.T) {
	spec := HBM3E
	spec.Capacity = 8 * units.MiB
	d := newTestDevice(t, spec)
	// Short results slice is rejected outright.
	if _, err := d.WriteSpans(make([]Span, 2), make([]Result, 1)); err == nil {
		t.Fatal("want error for short results slice")
	}
	// A bad span mid-batch charges the prior spans and stops.
	spans := []Span{{0, 1024}, {0, spec.Capacity + 1}, {0, 1024}}
	results := make([]Result, 3)
	done, err := d.WriteSpans(spans, results)
	if done != 1 || err == nil {
		t.Fatalf("done = %d, err = %v; want 1, out-of-bounds error", done, err)
	}
	if st := d.Stats(); st.Writes != 1 || st.WriteBytes != 1024 {
		t.Fatalf("stats after partial batch: %+v; want 1 write of 1024 bytes", st)
	}
}

// TestWriteFaultChargedAndCounted pins the write-fault semantics: the faulted
// write is fully charged (counters, energy, wear) before the error surfaces,
// the error wraps fault.ErrUncorrectable, and an unarmed device never faults.
func TestWriteFaultChargedAndCounted(t *testing.T) {
	spec := HBM3E
	spec.Capacity = 8 * units.MiB
	d := newTestDevice(t, spec)
	d.SetFaults(FaultConfig{Seed: 1, WriteFaultRate: 1})
	res, err := d.WriteAt(0, 4096)
	if !errors.Is(err, fault.ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
	if res.Latency <= 0 || res.Energy <= 0 {
		t.Fatalf("faulted write not charged: %+v", res)
	}
	st := d.Stats()
	if st.Writes != 1 || st.WriteFaults != 1 || st.Uncorrectable != 0 {
		t.Fatalf("stats = %+v; want 1 write, 1 write fault, 0 read uncorrectables", st)
	}
	if d.wear[0] == 0 {
		t.Fatal("faulted write should still wear the block")
	}
	// Zero config disarms: same write never faults.
	d.SetFaults(FaultConfig{})
	if _, err := d.WriteAt(0, 4096); err != nil {
		t.Fatalf("unarmed write failed: %v", err)
	}
}
