package memdev

import (
	"strings"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/units"
)

func TestAllSpecsValidate(t *testing.T) {
	specs := AllSpecs()
	if len(specs) < 10 {
		t.Fatalf("expected a full database, got %d specs", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestHBFlashShape pins the High-Bandwidth-Flash design point to its pitch:
// an order of magnitude more capacity than an HBM3E stack at HBM-class read
// bandwidth, with flash's write and endurance story intact underneath.
func TestHBFlashShape(t *testing.T) {
	s, err := SpecByName("HBF")
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity != 10*HBM3E.Capacity {
		t.Fatalf("HBF capacity %v, want 10x HBM3E (%v)", s.Capacity, 10*HBM3E.Capacity)
	}
	if s.ReadBW != HBM3E.ReadBW {
		t.Fatalf("HBF read BW %v, want HBM-class %v", s.ReadBW, HBM3E.ReadBW)
	}
	if s.Tech != cellphys.NANDFlash || s.Class != NonVolatile {
		t.Fatalf("HBF must stay flash underneath: tech %v class %v", s.Tech, s.Class)
	}
	if s.Endurance > NANDTLC.Endurance {
		t.Fatalf("HBF endurance %v must not beat TLC %v", s.Endurance, NANDTLC.Endurance)
	}
	if s.WriteBW >= s.ReadBW/10 {
		t.Fatalf("HBF writes must stay flash-slow: %v vs read %v", s.WriteBW, s.ReadBW)
	}
	if s.BlockSize != 16*units.KiB {
		t.Fatalf("HBF keeps flash page granularity, got %v", s.BlockSize)
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("HBM3E")
	if err != nil || s.Name != "HBM3E" {
		t.Fatalf("SpecByName(HBM3E) = %v, %v", s.Name, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestClassString(t *testing.T) {
	if Volatile.String() != "volatile" || Managed.String() != "managed-retention" ||
		NonVolatile.String() != "non-volatile" {
		t.Fatal("class names wrong")
	}
	if !strings.Contains(Class(9).String(), "9") {
		t.Fatal("unknown class should include number")
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	good := HBM3E
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Capacity = 0 },
		func(s *Spec) { s.ReadBW = 0 },
		func(s *Spec) { s.Endurance = 0 },
		func(s *Spec) { s.EndurancePotential = s.Endurance / 10 },
		func(s *Spec) { s.ReadEnergyPerBit = -1 },
		func(s *Spec) { s.RefreshInterval = -time.Second },
	}
	for i, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: bad spec validated", i)
		}
	}
}

func TestHBMRefreshPowerNonZero(t *testing.T) {
	p := HBM3E.RefreshPower()
	if p <= 0 {
		t.Fatal("HBM must pay refresh power")
	}
	// Sanity: a 24 GiB stack refreshing every 32 ms at 0.02 pJ/bit is
	// ~0.1-0.2 W; it must not dominate the 2 W static figure.
	if p > 1*units.Watt {
		t.Errorf("refresh power implausibly high: %v", p)
	}
	if HBM3E.IdlePower() <= HBM3E.StaticPower {
		t.Error("idle power should include refresh")
	}
}

func TestMRMNoRefresh(t *testing.T) {
	m := MRMSpec(cellphys.RRAM, 24*time.Hour)
	if m.RefreshPower() != 0 {
		t.Error("MRM pays no refresh power")
	}
	if m.IdlePower() >= HBM3E.IdlePower() {
		t.Errorf("MRM idle %v should undercut HBM idle %v", m.IdlePower(), HBM3E.IdlePower())
	}
}

// The paper's headline: MRM beats HBM on read energy efficiency, density,
// and idle power while giving up write performance.
func TestMRMVsHBMHeadline(t *testing.T) {
	m := MRMSpec(cellphys.RRAM, 24*time.Hour)
	if m.ReadEnergyPerBit >= HBM3E.ReadEnergyPerBit {
		t.Errorf("MRM read energy %v should beat HBM %v", m.ReadEnergyPerBit, HBM3E.ReadEnergyPerBit)
	}
	if m.Capacity <= HBM3E.Capacity {
		t.Errorf("MRM stack capacity %v should exceed HBM %v", m.Capacity, HBM3E.Capacity)
	}
	if m.ReadBW < HBM3E.ReadBW {
		t.Errorf("MRM read BW %v should match/exceed HBM %v", m.ReadBW, HBM3E.ReadBW)
	}
	if m.WriteBW >= HBM3E.WriteBW {
		t.Error("MRM write BW should be the sacrificed metric")
	}
	if m.BytesPerSecPerWatt() <= HBM3E.BytesPerSecPerWatt() {
		t.Error("MRM should win read bytes/s/W")
	}
}

func TestMRMRetentionSweepEndurance(t *testing.T) {
	day := MRMSpec(cellphys.RRAM, 24*time.Hour)
	week := MRMSpec(cellphys.RRAM, 7*24*time.Hour)
	if day.Endurance <= week.Endurance {
		t.Error("shorter retention must buy more endurance")
	}
}

func TestMRMSpecNames(t *testing.T) {
	cases := []struct {
		ret  time.Duration
		want string
	}{
		{24 * time.Hour, "MRM-RRAM@1d"},
		{time.Hour, "MRM-RRAM@1h"},
		{30 * time.Minute, "MRM-RRAM@30m"},
		{10 * units.Year, "MRM-RRAM@10y"},
		{30 * time.Second, "MRM-RRAM@30s"},
	}
	for _, c := range cases {
		if got := MRMSpec(cellphys.RRAM, c.ret).Name; got != c.want {
			t.Errorf("name for %v = %q, want %q", c.ret, got, c.want)
		}
	}
}

func TestBytesPerSecPerWatt(t *testing.T) {
	s := Spec{ReadEnergyPerBit: 1 * units.PicoJoule}
	// 1 pJ/bit → 0.125e12 bytes per joule.
	got := s.BytesPerSecPerWatt()
	want := 1.25e11
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("BytesPerSecPerWatt = %g, want ~%g", got, want)
	}
	if (Spec{}).BytesPerSecPerWatt() != 0 {
		t.Error("zero energy should yield 0, not +Inf")
	}
}

func TestAtTemperature(t *testing.T) {
	hot := HBM3E.AtTemperature(95)
	if hot.RefreshInterval != HBM3E.RefreshInterval/2 {
		t.Errorf("95C refresh interval = %v, want half of %v", hot.RefreshInterval, HBM3E.RefreshInterval)
	}
	if hot.RefreshPower() <= HBM3E.RefreshPower() {
		t.Error("hot HBM must pay more refresh power")
	}
	if !strings.Contains(hot.Name, "95C") {
		t.Errorf("name = %q", hot.Name)
	}
	// At or below the rating point: unchanged.
	if cool := HBM3E.AtTemperature(85); cool.RefreshInterval != HBM3E.RefreshInterval {
		t.Error("85C should be the rating point")
	}
	// Non-refreshing devices are unaffected.
	mrm := MRMSpec(cellphys.RRAM, 24*time.Hour)
	if hotMRM := mrm.AtTemperature(105); hotMRM.RefreshPower() != 0 || hotMRM.Name != mrm.Name {
		t.Error("MRM has no refresh to derate")
	}
}
