// Package memdev models memory and storage devices: a spec database
// calibrated to public data sheets, and a device simulator that charges
// latency, bandwidth, energy, and wear for accesses.
//
// This file is the single place where hardware stand-in numbers live.
// Every entry carries a provenance comment. Values are engineering estimates
// assembled from vendor spec sheets and the papers cited by the MRM paper —
// they are meant to reproduce the *relative* picture (orders of magnitude,
// who wins where), not to be device-accurate.
package memdev

import (
	"fmt"
	"math"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/units"
)

// Class partitions devices by how their retention relates to data lifetime.
type Class int

// Device classes.
const (
	Volatile    Class = iota // retention << data lifetime: refresh required
	NonVolatile              // retention >> data lifetime: wear-heavy writes
	Managed                  // retention ≈ data lifetime: the MRM regime
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Volatile:
		return "volatile"
	case NonVolatile:
		return "non-volatile"
	case Managed:
		return "managed-retention"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Spec describes one memory device (a package/stack, not a whole system).
type Spec struct {
	Name  string
	Tech  cellphys.Technology
	Class Class

	Capacity units.Bytes // per package/stack

	ReadLatency  time.Duration
	WriteLatency time.Duration
	ReadBW       units.Bandwidth // sustained sequential, per package
	WriteBW      units.Bandwidth

	ReadEnergyPerBit  units.Energy
	WriteEnergyPerBit units.Energy
	StaticPower       units.Power // leakage + periphery, excluding refresh

	// RefreshInterval is the cell retention window requiring a full-array
	// refresh pass (0 for non-refreshing devices). RefreshEnergyPerBit is
	// charged per bit per pass.
	RefreshInterval     time.Duration
	RefreshEnergyPerBit units.Energy

	Retention time.Duration // how long data survives unpowered/unrefreshed

	// Endurance is write cycles per cell for the shipping product;
	// EndurancePotential is the ceiling demonstrated for the technology in
	// the literature (the second marker series in the paper's Figure 1).
	Endurance          float64
	EndurancePotential float64

	CostPerGB units.Cost

	// BlockSize is the minimum efficient access granularity
	// (0 = byte/cacheline addressable).
	BlockSize units.Bytes

	// StackLayers is the maximum 3D die stacking demonstrated/projected,
	// used by the density-roadmap experiment (E11).
	StackLayers int
	// LayerDensityGbit is per-die capacity in Gbit at current process.
	LayerDensityGbit float64
}

// BytesPerSecPerWatt returns read bandwidth per watt of read energy —
// the read energy-efficiency figure of merit the paper optimizes for.
func (s Spec) BytesPerSecPerWatt() float64 {
	if s.ReadEnergyPerBit <= 0 {
		return 0
	}
	// 1 / (J/bit) = bit/J; /8 = bytes per joule = bytes/sec per watt.
	return 1 / (float64(s.ReadEnergyPerBit) * 8)
}

// RefreshPower returns the average power spent refreshing the full array,
// zero for non-refreshing devices.
func (s Spec) RefreshPower() units.Power {
	if s.RefreshInterval <= 0 {
		return 0
	}
	perPass := float64(s.RefreshEnergyPerBit) * float64(s.Capacity.Bits())
	return units.Power(perPass / s.RefreshInterval.Seconds())
}

// IdlePower is the power the device draws holding data with no traffic.
func (s Spec) IdlePower() units.Power { return s.StaticPower + s.RefreshPower() }

// Validate reports structural problems in a spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("memdev: spec has no name")
	case s.Capacity == 0:
		return fmt.Errorf("memdev: %s has zero capacity", s.Name)
	case s.ReadBW <= 0 || s.WriteBW <= 0:
		return fmt.Errorf("memdev: %s has non-positive bandwidth", s.Name)
	case s.Endurance <= 0:
		return fmt.Errorf("memdev: %s has non-positive endurance", s.Name)
	case s.EndurancePotential < s.Endurance:
		return fmt.Errorf("memdev: %s potential endurance below product endurance", s.Name)
	case s.ReadEnergyPerBit < 0 || s.WriteEnergyPerBit < 0:
		return fmt.Errorf("memdev: %s has negative energy", s.Name)
	case s.RefreshInterval < 0:
		return fmt.Errorf("memdev: %s has negative refresh interval", s.Name)
	}
	return nil
}

// The spec database. Provenance notes per entry.
var (
	// HBM3E: one 8-high 24 GB stack as used 8x on an NVIDIA B200
	// (192 GB, 8 TB/s aggregate => 1 TB/s per stack) [51].
	// Access energy ~3.9 pJ/bit (HBM2E measured ~3.9; HBM3E similar as
	// interface gains offset cell scaling). Refresh window 32 ms at
	// operating temperature; refresh energy ~0.02 pJ/bit/pass.
	// Cost: HBM commands ~$12-18/GB (industry estimates 2024-25).
	HBM3E = Spec{
		Name: "HBM3E", Tech: cellphys.DRAM, Class: Volatile,
		Capacity:    24 * units.GiB,
		ReadLatency: 100 * time.Nanosecond, WriteLatency: 100 * time.Nanosecond,
		ReadBW: 1 * units.TBps, WriteBW: 1 * units.TBps,
		ReadEnergyPerBit: 3.9 * units.PicoJoule, WriteEnergyPerBit: 3.9 * units.PicoJoule,
		StaticPower:     2 * units.Watt,
		RefreshInterval: 32 * time.Millisecond, RefreshEnergyPerBit: 0.02 * units.PicoJoule,
		Retention: 32 * time.Millisecond,
		Endurance: 1e16, EndurancePotential: 1e16,
		CostPerGB:   15,
		StackLayers: 16, LayerDensityGbit: 24,
	}

	// HBM4 projection: +30% per-layer density, 16-high [50], modestly
	// better pJ/bit; cost stays high due to hybrid bonding complexity.
	HBM4 = Spec{
		Name: "HBM4(proj)", Tech: cellphys.DRAM, Class: Volatile,
		Capacity:    48 * units.GiB,
		ReadLatency: 90 * time.Nanosecond, WriteLatency: 90 * time.Nanosecond,
		ReadBW: 1.6 * units.TBps, WriteBW: 1.6 * units.TBps,
		ReadEnergyPerBit: 3.2 * units.PicoJoule, WriteEnergyPerBit: 3.2 * units.PicoJoule,
		StaticPower:     3 * units.Watt,
		RefreshInterval: 32 * time.Millisecond, RefreshEnergyPerBit: 0.02 * units.PicoJoule,
		Retention: 32 * time.Millisecond,
		Endurance: 1e16, EndurancePotential: 1e16,
		CostPerGB:   18,
		StackLayers: 16, LayerDensityGbit: 31,
	}

	// DDR5 RDIMM: 64 GB, ~50 GB/s effective per DIMM; end-to-end access
	// energy ~15 pJ/bit including PHY/IO over the board.
	DDR5 = Spec{
		Name: "DDR5", Tech: cellphys.DRAM, Class: Volatile,
		Capacity:    64 * units.GiB,
		ReadLatency: 90 * time.Nanosecond, WriteLatency: 90 * time.Nanosecond,
		ReadBW: 50 * units.GBps, WriteBW: 50 * units.GBps,
		ReadEnergyPerBit: 15 * units.PicoJoule, WriteEnergyPerBit: 15 * units.PicoJoule,
		StaticPower:     1.5 * units.Watt,
		RefreshInterval: 64 * time.Millisecond, RefreshEnergyPerBit: 0.02 * units.PicoJoule,
		Retention: 64 * time.Millisecond,
		Endurance: 1e16, EndurancePotential: 1e16,
		CostPerGB:   4,
		StackLayers: 1, LayerDensityGbit: 24,
	}

	// LPDDR5X: the GB200 capacity tier [35]: 32 GB package, ~68 GB/s,
	// ~6 pJ/bit end-to-end; much cheaper than HBM.
	LPDDR5X = Spec{
		Name: "LPDDR5X", Tech: cellphys.DRAM, Class: Volatile,
		Capacity:    32 * units.GiB,
		ReadLatency: 110 * time.Nanosecond, WriteLatency: 110 * time.Nanosecond,
		ReadBW: 68 * units.GBps, WriteBW: 68 * units.GBps,
		ReadEnergyPerBit: 6 * units.PicoJoule, WriteEnergyPerBit: 6 * units.PicoJoule,
		StaticPower:     0.3 * units.Watt,
		RefreshInterval: 64 * time.Millisecond, RefreshEnergyPerBit: 0.02 * units.PicoJoule,
		Retention: 64 * time.Millisecond,
		Endurance: 1e16, EndurancePotential: 1e16,
		CostPerGB:   3,
		StackLayers: 2, LayerDensityGbit: 24,
	}

	// SLC NAND (enterprise storage-class SSD media): 10y retention,
	// 1e5 P/E [7]; end-to-end read energy tens of pJ/bit; block-erase
	// architecture forces 16 KiB page granularity.
	NANDSLC = Spec{
		Name: "NAND-SLC", Tech: cellphys.NANDFlash, Class: NonVolatile,
		Capacity:    512 * units.GiB,
		ReadLatency: 30 * time.Microsecond, WriteLatency: 200 * time.Microsecond,
		ReadBW: 3 * units.GBps, WriteBW: 1 * units.GBps,
		ReadEnergyPerBit: 30 * units.PicoJoule, WriteEnergyPerBit: 2000 * units.PicoJoule,
		StaticPower: 0.1 * units.Watt,
		Retention:   10 * units.Year,
		Endurance:   1e5, EndurancePotential: 1e6,
		CostPerGB:   0.8,
		BlockSize:   16 * units.KiB,
		StackLayers: 300, LayerDensityGbit: 2,
	}

	// TLC NAND: the commodity density point; 3e3 P/E.
	NANDTLC = Spec{
		Name: "NAND-TLC", Tech: cellphys.NANDFlash, Class: NonVolatile,
		Capacity:    2 * units.TiB,
		ReadLatency: 60 * time.Microsecond, WriteLatency: 600 * time.Microsecond,
		ReadBW: 3.5 * units.GBps, WriteBW: 1.2 * units.GBps,
		ReadEnergyPerBit: 35 * units.PicoJoule, WriteEnergyPerBit: 2500 * units.PicoJoule,
		StaticPower: 0.1 * units.Watt,
		Retention:   units.Year,
		Endurance:   3e3, EndurancePotential: 1e5,
		CostPerGB:   0.1,
		BlockSize:   16 * units.KiB,
		StackLayers: 300, LayerDensityGbit: 6,
	}

	// High-Bandwidth Flash: NAND dies re-architected for an HBM-style wide
	// interface, proposed by Ma & Patterson's LLM-inference-hardware analysis
	// (PAPERS.md) as the capacity-tier rival to MRM: ~10x HBM stack capacity
	// at HBM-like *read* bandwidth, with flash media underneath — microsecond
	// reads, slow block writes, TLC-class endurance and page granularity.
	// Numbers are engineering estimates from that proposal scaled to one
	// stack: 240 GB (10x HBM3E), 1 TB/s read (interface-limited), writes
	// TLC-like. Read energy benefits from the short interposer path (~8
	// pJ/bit vs ~35 end-to-end over NVMe); cost near commodity TLC with a
	// packaging premium. Endurance is the binding constraint for mutable
	// data — exactly the trade the fleetday KV/weights mixes probe.
	HBFlash = Spec{
		Name: "HBF", Tech: cellphys.NANDFlash, Class: NonVolatile,
		Capacity:    240 * units.GiB,
		ReadLatency: 20 * time.Microsecond, WriteLatency: 600 * time.Microsecond,
		ReadBW: 1 * units.TBps, WriteBW: 8 * units.GBps,
		ReadEnergyPerBit: 8 * units.PicoJoule, WriteEnergyPerBit: 2500 * units.PicoJoule,
		StaticPower: 0.4 * units.Watt,
		Retention:   units.Year,
		Endurance:   3e3, EndurancePotential: 1e5,
		CostPerGB:   0.4,
		BlockSize:   16 * units.KiB,
		StackLayers: 300, LayerDensityGbit: 6,
	}

	// Intel Optane PCM DIMM (discontinued; the iconic SCM product [16]).
	// 128 GB DIMM, ~6.7/2.3 GB/s R/W, 300 ns read; per-cell endurance ~1e6
	// at media level [5]. Technology potential ~1e9 [24, 30].
	OptanePCM = Spec{
		Name: "Optane-PCM", Tech: cellphys.PCM, Class: NonVolatile,
		Capacity:    128 * units.GiB,
		ReadLatency: 300 * time.Nanosecond, WriteLatency: 1 * time.Microsecond,
		ReadBW: 6.7 * units.GBps, WriteBW: 2.3 * units.GBps,
		ReadEnergyPerBit: 10 * units.PicoJoule, WriteEnergyPerBit: 100 * units.PicoJoule,
		StaticPower: 1.2 * units.Watt,
		Retention:   10 * units.Year,
		Endurance:   1e6, EndurancePotential: 1e9,
		CostPerGB:   5,
		BlockSize:   256, // 256 B media access granularity
		StackLayers: 4, LayerDensityGbit: 16,
	}

	// Weebit-class embedded ReRAM [32]: small arrays today; 10y retention,
	// ~1e5 cycles product; 1e10 demonstrated for HfOx cells [25].
	WeebitRRAM = Spec{
		Name: "ReRAM(product)", Tech: cellphys.RRAM, Class: NonVolatile,
		Capacity:    8 * units.GiB,
		ReadLatency: 200 * time.Nanosecond, WriteLatency: 500 * time.Nanosecond,
		ReadBW: 2 * units.GBps, WriteBW: 0.5 * units.GBps,
		ReadEnergyPerBit: 5 * units.PicoJoule, WriteEnergyPerBit: 20 * units.PicoJoule,
		StaticPower: 0.2 * units.Watt,
		Retention:   10 * units.Year,
		Endurance:   1e5, EndurancePotential: 1e10,
		CostPerGB:   8,
		BlockSize:   64,
		StackLayers: 8, LayerDensityGbit: 8,
	}

	// Everspin-class STT-MRAM [39]: fast, very high product endurance
	// (~1e10), tiny capacity; >1e15 demonstrated for the technology.
	EverspinSTT = Spec{
		Name: "STT-MRAM(product)", Tech: cellphys.STTMRAM, Class: NonVolatile,
		Capacity:    1 * units.GiB,
		ReadLatency: 35 * time.Nanosecond, WriteLatency: 50 * time.Nanosecond,
		ReadBW: 3.2 * units.GBps, WriteBW: 1.6 * units.GBps,
		ReadEnergyPerBit: 2 * units.PicoJoule, WriteEnergyPerBit: 5 * units.PicoJoule,
		StaticPower: 0.1 * units.Watt,
		Retention:   10 * units.Year,
		Endurance:   1e10, EndurancePotential: 1e15,
		CostPerGB:   50,
		BlockSize:   0,
		StackLayers: 1, LayerDensityGbit: 1,
	}
)

// AllSpecs returns the full database, MRM design points included.
func AllSpecs() []Spec {
	return []Spec{
		HBM3E, HBM4, DDR5, LPDDR5X,
		NANDSLC, NANDTLC, HBFlash,
		OptanePCM, WeebitRRAM, EverspinSTT,
		MRMSpec(cellphys.PCM, 24*time.Hour),
		MRMSpec(cellphys.RRAM, 24*time.Hour),
		MRMSpec(cellphys.STTMRAM, 24*time.Hour),
	}
}

// SpecByName looks up a spec in AllSpecs.
func SpecByName(name string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("memdev: no spec named %q", name)
}

// MRMSpec constructs a hypothetical Managed-Retention Memory design point:
// the given SCM technology operated at relaxed retention (per cellphys), in
// a dense transistor-less crossbar stack co-packaged like HBM. Read-path
// numbers improve over the shipping SCM product because the device drops the
// non-volatility guard bands and adopts an HBM-like wide interface [56, 58]:
//
//   - read energy: ~1 pJ/bit target (crossbar sensing + short interposer
//     links, no refresh, no charge pumps for 10-year writes)
//   - read bandwidth: HBM-class per stack (interface-limited, not cell-limited)
//   - density: resistive cells stack without capacitors [40]; we model
//     2x HBM3E per-stack capacity
//   - writes: slower and more expensive than reads — the paper's accepted
//     trade — taken straight from the cellphys operating point.
func MRMSpec(tech cellphys.Technology, retention time.Duration) Spec {
	op := cellphys.ForTechnology(tech).MustAt(retention)
	name := fmt.Sprintf("MRM-%s@%s", tech, shortDuration(retention))
	return Spec{
		Name: name, Tech: tech, Class: Managed,
		Capacity:    48 * units.GiB, // 2x HBM3E stack via crossbar stacking
		ReadLatency: 150 * time.Nanosecond,
		// Per-stack write bandwidth is cell-write-time limited; assume the
		// array exposes enough parallelism for 1/8 of read bandwidth.
		WriteLatency:       op.WriteLatency,
		ReadBW:             1.2 * units.TBps,
		WriteBW:            150 * units.GBps,
		ReadEnergyPerBit:   1.0 * units.PicoJoule,
		WriteEnergyPerBit:  op.WriteEnergy,
		StaticPower:        0.5 * units.Watt, // no refresh, modest periphery
		Retention:          retention,
		Endurance:          op.Endurance,
		EndurancePotential: op.Endurance * 10,
		CostPerGB:          6,             // between LPDDR and HBM: simpler bonding, new fab
		BlockSize:          2 * units.MiB, // block-level controller (§4)
		StackLayers:        16, LayerDensityGbit: 48,
	}
}

func shortDuration(d time.Duration) string {
	switch {
	case d >= units.Year:
		return fmt.Sprintf("%.0fy", float64(d)/float64(units.Year))
	case d >= 24*time.Hour:
		return fmt.Sprintf("%.0fd", d.Hours()/24)
	case d >= time.Hour:
		return fmt.Sprintf("%.0fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.0fm", d.Minutes())
	default:
		return d.String()
	}
}

// AtTemperature returns the spec derated for operation at tempC. DRAM-class
// retention halves for every 10°C above the 85°C rating point (the standard
// tREFI derating; JEDEC extended-temperature refresh), which doubles refresh
// energy and tightens the refresh interval — the §2.1 heat-dissipation
// problem of HBM tightly packaged with an accelerator die. Non-refreshing
// devices are returned unchanged (retention margins are absorbed by the
// retention-class guard band).
func (s Spec) AtTemperature(tempC float64) Spec {
	if s.RefreshInterval <= 0 || tempC <= 85 {
		return s
	}
	factor := math.Pow(2, (tempC-85)/10)
	d := s
	d.Name = fmt.Sprintf("%s@%.0fC", s.Name, tempC)
	d.RefreshInterval = time.Duration(float64(s.RefreshInterval) / factor)
	d.Retention = time.Duration(float64(s.Retention) / factor)
	return d
}
