package memdev

import (
	"math/rand"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/ecc"
	"mrm/internal/units"
)

// worstBERBrute is the pre-pruning reference: the per-block scan ReadAt used
// to run. The property tests assert the pruned fast path reports exactly —
// not approximately — this value.
func worstBERBrute(d *Device, addr, size units.Bytes) float64 {
	first, last, err := d.blockRange(addr, size)
	if err != nil {
		panic(err)
	}
	worst := 0.0
	for b := first; b <= last; b++ {
		age := d.now - d.lastWrite[b]
		if age < 0 {
			age = 0
		}
		ber := cellphys.RawBER(d.op, cellphys.WearState{Cycles: d.wear[b]}, age, d.berParams)
		if ber > worst {
			worst = ber
		}
	}
	return worst
}

// berTestDevice builds a device with several hundred wear blocks (2 MiB
// each), so ranges can straddle block and superblock boundaries.
func berTestDevice(t *testing.T) *Device {
	t.Helper()
	spec := HBM3E
	spec.Capacity = 640 * units.MiB // 320 wear blocks, 5 superblocks
	return newTestDevice(t, spec)
}

func TestWorstBERPrunedMatchesBruteForce(t *testing.T) {
	d := berTestDevice(t)
	rng := rand.New(rand.NewSource(7))
	cap := d.spec.Capacity
	// Non-uniform wear and age: scattered writes with time advancing in
	// between, so superblocks carry genuinely different aggregates.
	for i := 0; i < 200; i++ {
		addr := units.Bytes(rng.Int63n(int64(cap)))
		size := 1 + units.Bytes(rng.Int63n(int64(cap/8)))
		if addr+size > cap {
			size = cap - addr
		}
		if _, err := d.WriteAt(addr, size); err != nil {
			t.Fatal(err)
		}
		if err := d.Advance(time.Duration(rng.Int63n(int64(time.Hour)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		addr := units.Bytes(rng.Int63n(int64(cap)))
		size := 1 + units.Bytes(rng.Int63n(int64(cap-addr)))
		want := worstBERBrute(d, addr, size)
		res, err := d.ReadAt(addr, size)
		if err != nil {
			t.Fatal(err)
		}
		if res.RawBER != want {
			t.Fatalf("read %d [%d,%d): pruned RawBER %.17g != brute-force %.17g",
				i, addr, addr+size, res.RawBER, want)
		}
		// Interleave writes so aggregates keep changing under the reads.
		if i%7 == 0 {
			waddr := units.Bytes(rng.Int63n(int64(cap)))
			wsize := 1 + units.Bytes(rng.Int63n(int64(cap-waddr)))
			if _, err := d.WriteAt(waddr, wsize); err != nil {
				t.Fatal(err)
			}
			if err := d.Advance(time.Duration(rng.Int63n(int64(10 * time.Minute)))); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestReadStraddlesBlockAndSuperblockBoundaries(t *testing.T) {
	d := berTestDevice(t)
	wb := d.wearBlock
	if _, err := d.WriteAt(0, d.spec.Capacity); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Wear the superblock-1 side of the boundary so the straddling read's
	// worst block lies in exactly one of the two superblocks it touches.
	sbBoundary := units.Bytes(superBlocks) * wb
	for i := 0; i < 5; i++ {
		if _, err := d.WriteAt(sbBoundary, 3*wb); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct{ addr, size units.Bytes }{
		{wb - 1, 2},                          // straddles a block boundary
		{sbBoundary - 1, 2},                  // straddles the superblock boundary
		{sbBoundary - wb/2, wb},              // half a block each side
		{sbBoundary - 10*wb, 20 * wb},        // full blocks both sides
		{0, d.spec.Capacity},                 // whole device
		{wb / 4, wb / 2},                     // interior of one block
		{sbBoundary, units.Bytes(1)},         // first byte of a superblock
		{2*sbBoundary - 1, sbBoundary + 100}, // partial, full, partial superblocks
	}
	for _, c := range cases {
		want := worstBERBrute(d, c.addr, c.size)
		res, err := d.ReadAt(c.addr, c.size)
		if err != nil {
			t.Fatal(err)
		}
		if res.RawBER != want {
			t.Errorf("ReadAt[%d,%d): RawBER %.17g != brute-force %.17g",
				c.addr, c.addr+c.size, res.RawBER, want)
		}
	}
}

func TestWriteFractionalWearAcrossSuperblockBoundary(t *testing.T) {
	d := berTestDevice(t)
	wb := d.wearBlock
	sbBoundary := units.Bytes(superBlocks) * wb // start of wear block 64
	// Half of block 63, all of block 64, quarter of block 65.
	addr := sbBoundary - wb/2
	size := wb/2 + wb + wb/4
	if _, err := d.WriteAt(addr, size); err != nil {
		t.Fatal(err)
	}
	wantWear := map[int]float64{
		superBlocks - 1: 0.5,
		superBlocks:     1.0,
		superBlocks + 1: 0.25,
	}
	for b, want := range wantWear {
		if got := d.wear[b]; got != want {
			t.Errorf("wear[%d] = %v, want %v", b, got, want)
		}
	}
	if got := d.wear[superBlocks-2]; got != 0 {
		t.Errorf("wear[%d] = %v, want untouched 0", superBlocks-2, got)
	}
	// Aggregates: superblock 0's max wear is 0.5 (block 63), superblock 1's
	// is 1.0 (block 64); neither superblock was fully covered, so the
	// min-lastWrite bounds must keep their conservative value 0.
	if got := d.sbMaxWear[0]; got != 0.5 {
		t.Errorf("sbMaxWear[0] = %v, want 0.5", got)
	}
	if got := d.sbMaxWear[1]; got != 1.0 {
		t.Errorf("sbMaxWear[1] = %v, want 1.0", got)
	}
	if err := d.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(addr, size); err != nil {
		t.Fatal(err)
	}
	if got := d.sbMinLastWrite[0]; got != 0 {
		t.Errorf("sbMinLastWrite[0] = %v, want conservative 0 after partial cover", got)
	}
	if got := d.sbMinLastWrite[1]; got != 0 {
		t.Errorf("sbMinLastWrite[1] = %v, want conservative 0 after partial cover", got)
	}
}

func TestWriteInteriorBlocksWearExactlyOne(t *testing.T) {
	d := berTestDevice(t)
	wb := d.wearBlock
	// Unaligned large write: edge blocks fractional, interior exactly 1.0.
	addr, size := wb/2, 10*wb
	if _, err := d.WriteAt(addr, size); err != nil {
		t.Fatal(err)
	}
	if got := d.wear[0]; got != 0.5 {
		t.Errorf("first-edge wear = %v, want 0.5", got)
	}
	for b := 1; b <= 9; b++ {
		if got := d.wear[b]; got != 1.0 {
			t.Errorf("interior wear[%d] = %v, want exactly 1.0", b, got)
		}
	}
	if got := d.wear[10]; got != 0.5 {
		t.Errorf("last-edge wear = %v, want 0.5", got)
	}
}

func TestWriteFullSuperblockSetsMinLastWrite(t *testing.T) {
	d := berTestDevice(t)
	wb := d.wearBlock
	if err := d.Advance(time.Hour); err != nil {
		t.Fatal(err)
	}
	// Cover superblock 1 entirely (plus slop on both sides).
	addr := units.Bytes(superBlocks)*wb - wb/2
	size := units.Bytes(superBlocks)*wb + wb
	if _, err := d.WriteAt(addr, size); err != nil {
		t.Fatal(err)
	}
	if got := d.sbMinLastWrite[1]; got != time.Hour {
		t.Errorf("sbMinLastWrite[1] = %v, want %v (fully covered)", got, time.Hour)
	}
	if got := d.sbMinLastWrite[0]; got != 0 {
		t.Errorf("sbMinLastWrite[0] = %v, want 0 (only partially covered)", got)
	}
}

func TestReadTightensMinLastWriteBound(t *testing.T) {
	d := berTestDevice(t)
	wb := d.wearBlock
	if err := d.Advance(time.Hour); err != nil {
		t.Fatal(err)
	}
	// Partial write leaves the superblock bound conservatively at 0...
	if _, err := d.WriteAt(0, units.Bytes(superBlocks)*wb/2); err != nil {
		t.Fatal(err)
	}
	if got := d.sbMinLastWrite[0]; got != 0 {
		t.Fatalf("sbMinLastWrite[0] = %v before scan, want 0", got)
	}
	// ...and a full-superblock scan tightens it to the true minimum (still 0
	// here — the second half was never written) while a later full write
	// then raises it exactly.
	if _, err := d.ReadAt(0, units.Bytes(superBlocks)*wb); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(0, units.Bytes(superBlocks)*wb); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(0, units.Bytes(superBlocks)*wb); err != nil {
		t.Fatal(err)
	}
	if got := d.sbMinLastWrite[0]; got != time.Hour {
		t.Errorf("sbMinLastWrite[0] = %v after full write + scan, want %v", got, time.Hour)
	}
}

// TestReadSpansMatchesSequentialReadAt drives two identical fault-armed
// devices through the same logical reads — one call-by-call, one batched —
// and requires identical costs, errors, fault events, and counters. This is
// the contract that lets the cluster layer coalesce KV reads without
// perturbing the e30 golden output.
func TestReadSpansMatchesSequentialReadAt(t *testing.T) {
	mk := func() *Device {
		spec := HBM3E
		spec.Capacity = 64 * units.MiB
		d := newTestDevice(t, spec)
		if _, err := d.WriteAt(0, spec.Capacity); err != nil {
			t.Fatal(err)
		}
		if err := d.Advance(time.Hour); err != nil {
			t.Fatal(err)
		}
		d.SetFaults(FaultConfig{
			Seed:          99,
			Code:          ecc.RSSpec(255, 223),
			UBERTarget:    1e-18,
			TransientRate: 0.05,
			LapseRate:     0.03,
		})
		return d
	}
	seq, bat := mk(), mk()
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(16)
		spans := make([]Span, n)
		for i := range spans {
			addr := units.Bytes(rng.Int63n(int64(seq.spec.Capacity - 4096)))
			spans[i] = Span{Addr: addr, Size: 1 + units.Bytes(rng.Int63n(4096))}
		}
		// Sequential reference: stop at first error.
		seqResults := make([]Result, n)
		seqDone, seqErr := n, error(nil)
		for i, sp := range spans {
			res, err := seq.ReadAt(sp.Addr, sp.Size)
			seqResults[i] = res
			if err != nil {
				seqDone, seqErr = i, err
				break
			}
		}
		batResults := make([]Result, n)
		batDone, batErr := bat.ReadSpans(spans, batResults)
		if batDone != seqDone {
			t.Fatalf("round %d: ReadSpans done %d, sequential %d", round, batDone, seqDone)
		}
		if (batErr == nil) != (seqErr == nil) ||
			(batErr != nil && batErr.Error() != seqErr.Error()) {
			t.Fatalf("round %d: ReadSpans err %v, sequential %v", round, batErr, seqErr)
		}
		upto := seqDone
		if seqErr != nil {
			upto++ // the failing read's cost is reported too
		}
		for i := 0; i < upto; i++ {
			if batResults[i] != seqResults[i] {
				t.Fatalf("round %d span %d: %+v != %+v", round, i, batResults[i], seqResults[i])
			}
		}
		if gs, gb := seq.Stats(), bat.Stats(); gs != gb {
			t.Fatalf("round %d: stats diverged: %+v != %+v", round, gs, gb)
		}
		if es, eb := seq.Energy(), bat.Energy(); es != eb {
			t.Fatalf("round %d: energy diverged: %+v != %+v", round, es, eb)
		}
	}
}

func TestReadSpansValidation(t *testing.T) {
	spec := HBM3E
	spec.Capacity = 8 * units.MiB
	d := newTestDevice(t, spec)
	if _, err := d.WriteAt(0, spec.Capacity); err != nil {
		t.Fatal(err)
	}
	// Short results slice is rejected outright.
	if _, err := d.ReadSpans(make([]Span, 2), make([]Result, 1)); err == nil {
		t.Fatal("want error for short results slice")
	}
	// A bad span mid-batch charges the prior spans and stops.
	spans := []Span{{0, 1024}, {0, spec.Capacity + 1}, {0, 1024}}
	results := make([]Result, 3)
	done, err := d.ReadSpans(spans, results)
	if done != 1 || err == nil {
		t.Fatalf("done = %d, err = %v; want 1, out-of-bounds error", done, err)
	}
	if st := d.Stats(); st.Reads != 1 || st.ReadBytes != 1024 {
		t.Fatalf("stats after partial batch: %+v; want 1 read of 1024 bytes", st)
	}
}
