// Package sweep is the deterministic parallel execution engine behind the
// repo's experiment drivers. A sweep is a grid of independent simulation
// cells (one per memory config, retention class, batch size, fleet node, …);
// Map fans the cells out across a bounded worker pool and collects results
// in cell order, so a sweep's output is bit-identical whether it ran on one
// worker or sixteen.
//
// Determinism contract:
//
//   - Every cell receives a Cell whose Seed is derived from the sweep's base
//     seed and the cell index via splitmix64 (DeriveSeed). A cell that needs
//     randomness builds its RNG from that seed (Cell.RNG), never from a
//     stream shared with other cells, so results do not depend on which
//     worker ran the cell or in what order.
//   - Results are collected into a slice indexed by cell, and any reduction
//     the caller performs over that slice runs serially in cell order —
//     floating-point sums come out in the same order as a serial loop.
//   - On failure, Map reports the error of the lowest-index failing cell
//     (the same cell a serial loop would have failed on first) and cancels
//     the context so unstarted cells are skipped.
//
// The pool size defaults to runtime.NumCPU and can be overridden per call
// (Config.Workers) or process-wide (SetDefaultWorkers — what cmd/mrmsim's
// -parallel flag sets). Workers == 1 degenerates to a plain serial loop with
// no goroutines, which is also the reference semantics every parallel run
// must reproduce.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mrm/internal/dist"
)

// defaultWorkers is the process-wide pool size used when Config.Workers is
// zero. It starts at runtime.NumCPU().
var defaultWorkers atomic.Int64

// init seeds the default pool size.
//
//mrm:allow-seedpurity pool sizing is engine configuration, not a decision: results are identical at any worker count
func init() {
	defaultWorkers.Store(int64(runtime.NumCPU()))
}

// SetDefaultWorkers sets the process-wide default pool size. n < 1 resets to
// runtime.NumCPU(). It returns the previous value so callers (tests,
// benchmarks) can restore it.
//
//mrm:allow-seedpurity pool sizing is engine configuration, not a decision: results are identical at any worker count
func SetDefaultWorkers(n int) int {
	if n < 1 {
		n = runtime.NumCPU()
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers returns the process-wide default pool size.
//
//mrm:allow-seedpurity pool sizing is engine configuration, not a decision: results are identical at any worker count
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// DeriveSeed maps (base seed, cell index) to an independent full-entropy
// seed via one splitmix64 step over the index's position in the base
// stream. Distinct indices yield uncorrelated seeds even for base == 0, and
// the derivation is pure — no shared RNG to advance, so it is safe to call
// from any worker for any index.
func DeriveSeed(base uint64, index int) uint64 {
	x := base + (uint64(index)+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Cell identifies one unit of sweep work.
type Cell struct {
	// Index is the cell's position in the input slice.
	Index int
	// Seed is the cell's deterministic seed (DeriveSeed of the sweep's base
	// seed and Index).
	Seed uint64
}

// RNG returns a fresh generator seeded with the cell's seed. Each call
// returns an identical stream; cells that interleave several distributions
// should draw them all from one RNG, as a serial loop would.
func (c Cell) RNG() *dist.RNG { return dist.NewRNG(c.Seed) }

// Config tunes one sweep.
type Config struct {
	// Workers bounds the pool; 0 means DefaultWorkers(), 1 runs serially on
	// the calling goroutine.
	Workers int
	// Seed is the sweep's base seed for per-cell seed derivation.
	Seed uint64
}

// Map evaluates fn over every cell of the grid with bounded parallelism and
// returns the results in cell order. fn must treat its inputs as read-only
// shared state (it runs concurrently with other cells) and take all
// randomness from the Cell. If any cell fails, Map cancels the remaining
// cells and returns the error of the lowest-index cell that failed.
//
//mrm:allow-seedpurity the worker pool is scheduler plumbing, not a decision: per-cell seeds are pure and results are collected in cell order
func Map[T, R any](ctx context.Context, cfg Config, cells []T, fn func(ctx context.Context, c Cell, v T) (R, error)) ([]R, error) {
	n := len(cells)
	if n == 0 {
		return nil, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	if workers == 1 {
		// Reference semantics: a plain serial loop.
		for i, v := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, Cell{Index: i, Seed: DeriveSeed(cfg.Seed, i)}, v)
			if err != nil {
				return nil, fmt.Errorf("sweep: cell %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64 // next cell index to claim
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = map[int]error{} // failing cell index -> error
	)
	fail := func(i int, err error) {
		mu.Lock()
		errs[i] = err
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					// Cancelled: skip unstarted cells. Their results are
					// never read because an error is already recorded (or the
					// parent context died, reported below).
					return
				}
				r, err := fn(ctx, Cell{Index: i, Seed: DeriveSeed(cfg.Seed, i)}, cells[i])
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		// Report the lowest-index failure: the cell a serial loop would have
		// died on first (modulo cells it never reached).
		first := -1
		for i := range errs {
			if first < 0 || i < first {
				first = i
			}
		}
		return nil, fmt.Errorf("sweep: cell %d: %w", first, errs[first])
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Run is Map over the index grid [0, n): for sweeps whose cells are fully
// described by their index and seed.
func Run[R any](ctx context.Context, cfg Config, n int, fn func(ctx context.Context, c Cell) (R, error)) ([]R, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative cell count %d", n)
	}
	cells := make([]struct{}, n)
	return Map(ctx, cfg, cells, func(ctx context.Context, c Cell, _ struct{}) (R, error) {
		return fn(ctx, c)
	})
}
