package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// MapOn on a pool must be bit-identical to Map at any worker count.
func TestMapOnMatchesMap(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	fn := func(_ context.Context, c Cell, v int) (uint64, error) {
		return c.Seed ^ uint64(v)<<32, nil
	}
	want, err := Map(context.Background(), Config{Workers: 1, Seed: 42}, cells, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		got, err := MapOn(p, 42, cells, fn)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d cell %d: got %d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// A pool outlives many sweeps: results stay correct across repeated MapOn
// calls on one pool, which is the per-window usage pattern in RunStream.
func TestPoolReuseAcrossSweeps(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 50; round++ {
		round := round
		got, err := MapOn(p, 0, make([]struct{}, 7), func(_ context.Context, c Cell, _ struct{}) (int, error) {
			return round*100 + c.Index, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != round*100+i {
				t.Fatalf("round %d cell %d: got %d", round, i, v)
			}
		}
	}
}

// MapAsync must report the lowest-index failing cell with Map's exact
// wrapping, and cancel the rest.
func TestMapAsyncLowestIndexError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	boom := errors.New("boom")
	h := MapAsync(p, 0, make([]struct{}, 64), func(_ context.Context, c Cell, _ struct{}) (int, error) {
		if c.Index%3 == 1 {
			return 0, fmt.Errorf("cell says: %w", boom)
		}
		return c.Index, nil
	})
	_, err := h.Wait()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	if !strings.HasPrefix(err.Error(), "sweep: cell 1:") {
		t.Fatalf("want lowest-index cell 1 reported, got %q", err)
	}
	// Wait is idempotent.
	if _, err2 := h.Wait(); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("second Wait differs: %v vs %v", err2, err)
	}
}

// Several handles can be in flight on one pool at once — the double-buffered
// window pattern — and each harvests its own results.
func TestMapAsyncOverlappingHandles(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var hs []*Handle[int]
	for k := 0; k < 8; k++ {
		k := k
		hs = append(hs, MapAsync(p, 0, make([]struct{}, 5), func(_ context.Context, c Cell, _ struct{}) (int, error) {
			return k*10 + c.Index, nil
		}))
	}
	for k, h := range hs {
		got, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != k*10+i {
				t.Fatalf("handle %d cell %d: got %d", k, i, v)
			}
		}
	}
}

// Close drains every submitted task before returning.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(3)
	var ran atomic.Int64
	h := MapAsync(p, 0, make([]struct{}, 200), func(_ context.Context, _ Cell, _ struct{}) (struct{}, error) {
		ran.Add(1)
		return struct{}{}, nil
	})
	p.Close()
	if n := ran.Load(); n != 200 {
		t.Fatalf("Close returned with %d/200 tasks run", n)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
}

// An empty cell slice completes immediately.
func TestMapAsyncEmpty(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	got, err := MapAsync(p, 0, []int(nil), func(_ context.Context, _ Cell, _ int) (int, error) {
		t.Fatal("fn called for empty cells")
		return 0, nil
	}).Wait()
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
