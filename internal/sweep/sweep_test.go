package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestDeriveSeedDistinctAndStable(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("seed collision between cells %d and %d", j, i)
		}
		seen[s] = i
	}
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("derivation must be pure")
	}
	if DeriveSeed(42, 7) == DeriveSeed(43, 7) {
		t.Fatal("different base seeds should derive different cell seeds")
	}
	// Base 0 must still produce entropy (splitmix property).
	if DeriveSeed(0, 0) == 0 || DeriveSeed(0, 1) == 0 {
		t.Fatal("zero base seed should not yield zero cell seeds")
	}
}

func TestMapOrderedResults(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i * 3
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := Map(context.Background(), Config{Workers: workers}, cells,
			func(_ context.Context, c Cell, v int) (int, error) {
				return v + c.Index, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range got {
			if g != i*4 {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, g, i*4)
			}
		}
	}
}

// The engine's core promise: identical results at any worker count, when
// cells draw randomness only from their Cell seed.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Run(context.Background(), Config{Workers: workers, Seed: 42}, 64,
			func(_ context.Context, c Cell) (float64, error) {
				rng := c.RNG()
				sum := 0.0
				for i := 0; i < 100; i++ {
					sum += rng.Float64()
				}
				return sum, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial", w)
		}
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		_, err := Run(context.Background(), Config{Workers: workers}, 50,
			func(_ context.Context, c Cell) (int, error) {
				if c.Index == 13 || c.Index == 37 {
					return 0, fmt.Errorf("cell says: %w", sentinel)
				}
				return c.Index, nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		// Cells are claimed in index order, a claimed cell always runs to
		// completion, and cell 13 always fails — so the lowest-index failure
		// is 13 at every worker count, matching the serial loop's first error.
		if want := "sweep: cell 13: cell says: boom"; err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", workers, err, want)
		}
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{Workers: 4}, 10, func(context.Context, Cell) (int, error) {
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapErrorCancelsRemainingCells(t *testing.T) {
	var started atomic.Int64
	_, err := Run(context.Background(), Config{Workers: 2}, 1000,
		func(ctx context.Context, c Cell) (int, error) {
			started.Add(1)
			if c.Index == 0 {
				return 0, errors.New("early failure")
			}
			// Give cancellation a chance to propagate.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not skip any of the %d cells", n)
	}
}

func TestMapEmptyAndRunValidation(t *testing.T) {
	out, err := Map(context.Background(), Config{}, []int(nil),
		func(_ context.Context, _ Cell, v int) (int, error) { return v, nil })
	if err != nil || out != nil {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
	if _, err := Run(context.Background(), Config{}, -1,
		func(context.Context, Cell) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative count should error")
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	old := SetDefaultWorkers(3)
	defer SetDefaultWorkers(old)
	if DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", DefaultWorkers())
	}
	if prev := SetDefaultWorkers(0); prev != 3 {
		t.Fatalf("Swap returned %d, want 3", prev)
	}
	if DefaultWorkers() < 1 {
		t.Fatal("reset should restore NumCPU >= 1")
	}
}
