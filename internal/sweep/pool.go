package sweep

import (
	"context"
	"fmt"
	"sync"
)

// Pool is a persistent bounded worker pool for repeated sweeps. Map spins up
// and tears down its workers on every call, which is fine for one-shot
// experiment grids but pure churn for a streaming fleet replay that runs a
// sweep per window — thousands of sweeps per call. A Pool is created once
// (NewPool), shared by every MapOn/MapAsync in that replay, and torn down
// with Close.
//
// The determinism contract is Map's: per-cell seeds are pure (DeriveSeed),
// results land in cell order, and the lowest-index failing cell's error is
// reported. Tasks are executed from a FIFO queue, so a one-worker pool runs
// cells in submission order — the same order as Map's serial reference loop —
// and because cells are independent, results are identical at any worker
// count.
type Pool struct {
	workers int
	mu      sync.Mutex // guards queue, head, closed
	cond    *sync.Cond
	queue   []func()
	head    int
	closed  bool
	wg      sync.WaitGroup
}

// NewPool starts a pool with the given number of workers (<= 0 means
// DefaultWorkers()). The caller owns the pool and must Close it.
//
//mrm:allow-seedpurity the worker pool is scheduler plumbing, not a decision: per-cell seeds are pure and results are collected in cell order
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// worker drains the task queue until the pool is closed and empty.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.head == len(p.queue) && !p.closed {
			p.cond.Wait()
		}
		if p.head == len(p.queue) {
			p.mu.Unlock()
			return
		}
		fn := p.queue[p.head]
		p.queue[p.head] = nil
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		}
		p.mu.Unlock()
		fn()
	}
}

// submit enqueues one task. The queue is unbounded, so submission never
// blocks — backpressure is the caller's business (MapAsync callers bound
// their in-flight handles).
func (p *Pool) submit(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sweep: task submitted to closed Pool")
	}
	p.queue = append(p.queue, fn)
	p.mu.Unlock()
	p.cond.Signal()
}

// Close drains all submitted tasks and stops the workers. It blocks until
// every outstanding task has finished; submitting after Close panics.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Handle is an in-flight MapAsync sweep: Wait blocks until every cell has
// finished and returns the results in cell order, or the lowest-index
// failing cell's error — exactly Map's semantics, split into dispatch and
// harvest so the caller can overlap its own work (e.g. filling the next
// window) with the sweep.
type Handle[R any] struct {
	mu      sync.Mutex // guards results, left, errIdx, err
	results []R
	left    int
	errIdx  int
	err     error
	done    chan struct{}
	cancel  context.CancelFunc
}

// Wait blocks until the sweep completes. It is idempotent: every call
// returns the same results (in cell order) or the same lowest-index error,
// wrapped exactly as Map wraps it.
//
//mrm:allow-seedpurity harvest synchronization only: results were produced from pure per-cell seeds and are returned in cell order
func (h *Handle[R]) Wait() ([]R, error) {
	<-h.done
	if h.errIdx >= 0 {
		return nil, fmt.Errorf("sweep: cell %d: %w", h.errIdx, h.err)
	}
	return h.results, nil
}

// MapAsync dispatches fn over every cell onto the pool and returns
// immediately with a Handle; Wait harvests the results in cell order. fn has
// Map's contract: it runs concurrently with other cells, must take all
// randomness from its Cell, and its context is cancelled once any cell
// fails (unstarted cells are then skipped; their results are never read
// because the error wins).
func MapAsync[T, R any](p *Pool, seed uint64, cells []T, fn func(ctx context.Context, c Cell, v T) (R, error)) *Handle[R] {
	h := &Handle[R]{results: make([]R, len(cells)), left: len(cells), errIdx: -1, done: make(chan struct{})}
	if len(cells) == 0 {
		close(h.done)
		return h
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	for i := range cells {
		i, v := i, cells[i]
		p.submit(func() {
			var r R
			var err error
			if ctx.Err() == nil {
				r, err = fn(ctx, Cell{Index: i, Seed: DeriveSeed(seed, i)}, v)
			}
			h.mu.Lock()
			if err != nil {
				if h.errIdx < 0 || i < h.errIdx {
					h.errIdx, h.err = i, err
				}
			} else {
				h.results[i] = r
			}
			h.left--
			last := h.left == 0
			if last && h.errIdx < 0 {
				// Cancelled-and-skipped cells leave zero results; without a
				// recorded error that would be silent corruption, so surface
				// the context's own error (parent cancellation).
				if cerr := ctx.Err(); cerr != nil {
					h.errIdx, h.err = len(cells), cerr
				}
			}
			h.mu.Unlock()
			if err != nil {
				cancel()
			}
			if last {
				cancel()
				close(h.done)
			}
		})
	}
	return h
}

// MapOn is Map over an existing pool: dispatch plus immediate harvest. It is
// the drop-in replacement for repeated Map calls that would otherwise
// rebuild the worker pool each time.
func MapOn[T, R any](p *Pool, seed uint64, cells []T, fn func(ctx context.Context, c Cell, v T) (R, error)) ([]R, error) {
	return MapAsync(p, seed, cells, fn).Wait()
}
