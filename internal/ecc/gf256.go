package ecc

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
// the field used by standard Reed–Solomon codes (CD, DVD, RAID-6, QR).

const gfPoly = 0x11d

var (
	gfExp [512]byte // exp table doubled to avoid mod in Mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow raises the generator's power: alpha^n.
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte {
	if a == 0 {
		panic("ecc: inverse of zero in GF(256)")
	}
	return gfExp[255-int(gfLog[a])]
}

// polyEval evaluates polynomial p (coefficients highest degree first) at x.
func polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = gfMul(y, x) ^ c
	}
	return y
}

// polyMul multiplies two polynomials (highest degree first).
func polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= gfMul(ca, cb)
		}
	}
	return out
}
