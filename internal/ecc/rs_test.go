package ecc

import (
	"bytes"
	"errors"
	"testing"

	"mrm/internal/dist"
)

func mustRS(t *testing.T, n, k int) *RS {
	t.Helper()
	r, err := NewRS(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRSValidation(t *testing.T) {
	for _, c := range []struct{ n, k int }{{256, 200}, {10, 0}, {10, 10}, {10, 11}, {10, 7}} {
		if _, err := NewRS(c.n, c.k); err == nil {
			t.Errorf("RS(%d,%d) should be rejected", c.n, c.k)
		}
	}
	r := mustRS(t, 255, 223)
	if r.N() != 255 || r.K() != 223 || r.T() != 16 {
		t.Fatalf("RS(255,223) geometry wrong: n=%d k=%d t=%d", r.N(), r.K(), r.T())
	}
	if o := r.Overhead(); o < 0.125 || o > 0.126 {
		t.Fatalf("overhead = %v", o)
	}
}

func TestRSEncodeLengthCheck(t *testing.T) {
	r := mustRS(t, 15, 11)
	if _, err := r.Encode(make([]byte, 10)); err == nil {
		t.Fatal("wrong-length data should error")
	}
	if _, _, err := r.Decode(make([]byte, 10)); err == nil {
		t.Fatal("wrong-length codeword should error")
	}
}

func TestRSCleanRoundTrip(t *testing.T) {
	r := mustRS(t, 255, 223)
	rng := dist.NewRNG(1)
	data := make([]byte, 223)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	cw, err := r.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := r.Decode(cw)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: corrected=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clean decode corrupted data")
	}
}

func TestRSCorrectsUpToT(t *testing.T) {
	r := mustRS(t, 255, 223)
	rng := dist.NewRNG(2)
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 223)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		cw, err := r.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		nerr := 1 + rng.Intn(r.T())
		positions := rng.Perm(r.N())[:nerr]
		for _, p := range positions {
			cw[p] ^= byte(rng.Uint64()) | 1 // guaranteed nonzero flip
		}
		got, n, err := r.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		if n != nerr {
			t.Fatalf("trial %d: corrected %d, injected %d", trial, n, nerr)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data after correcting %d errors", trial, nerr)
		}
	}
}

func TestRSSmallCode(t *testing.T) {
	// RS(15,11): t=2; exercise a different geometry than the big code.
	r := mustRS(t, 15, 11)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	cw, err := r.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	cw[0] ^= 0xff
	cw[14] ^= 0x55
	got, n, err := r.Decode(cw)
	if err != nil || n != 2 || !bytes.Equal(got, data) {
		t.Fatalf("got=%v corrected=%d err=%v", got, n, err)
	}
}

func TestRSRejectsBeyondT(t *testing.T) {
	r := mustRS(t, 63, 55) // t = 4
	rng := dist.NewRNG(3)
	rejected := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		data := make([]byte, 55)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		cw, _ := r.Encode(data)
		// Inject t+2 errors: decoder must either flag uncorrectable or
		// (rarely) miscorrect — it must never claim success with the
		// original data unless it actually fixed it.
		for _, p := range rng.Perm(r.N())[:r.T()+2] {
			cw[p] ^= byte(rng.Uint64()) | 1
		}
		got, _, err := r.Decode(cw)
		if errors.Is(err, ErrUncorrectable) {
			rejected++
			continue
		}
		if err == nil && bytes.Equal(got, data) {
			t.Fatalf("trial %d: decoder claimed to fix more than t errors", trial)
		}
	}
	if rejected == 0 {
		t.Fatal("decoder never reported uncorrectable for t+2 errors")
	}
}

func TestGF256Basics(t *testing.T) {
	// alpha^255 = 1.
	if gfPow(255) != 1 || gfPow(0) != 1 {
		t.Fatal("gfPow identity wrong")
	}
	// Multiplicative inverse round trip for all nonzero elements.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv(%d) wrong", a)
		}
		if gfDiv(byte(a), byte(a)) != 1 {
			t.Fatalf("div(%d,%d) != 1", a, a)
		}
	}
	if gfMul(0, 5) != 0 || gfMul(5, 0) != 0 || gfDiv(0, 7) != 0 {
		t.Fatal("zero handling wrong")
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfDiv(1, 0)
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfInv(0)
}

func TestGFDistributive(t *testing.T) {
	rng := dist.NewRNG(9)
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64())
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails: a=%d b=%d c=%d", a, b, c)
		}
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = x^2 + 1 at x=2 (GF arithmetic): 2*2 ^ 1 = 4^1 = 5.
	if got := polyEval([]byte{1, 0, 1}, 2); got != 5 {
		t.Fatalf("polyEval = %d, want 5", got)
	}
}
