package ecc_test

import (
	"fmt"

	"mrm/internal/ecc"
)

// Correct a single flipped bit in a 64-bit word with the DRAM-style
// SECDED code.
func ExampleHammingDecode() {
	cw := ecc.HammingEncode(0xdeadbeef)
	cw.FlipBit(17)
	data, corrected, err := ecc.HammingDecode(cw)
	fmt.Printf("data=%#x corrected=%d err=%v\n", data, corrected, err)
	// Output: data=0xdeadbeef corrected=1 err=<nil>
}

// Protect a 223-byte block with RS(255,223) and repair a burst of errors.
func ExampleRS_Decode() {
	code, err := ecc.NewRS(255, 223)
	if err != nil {
		panic(err)
	}
	data := make([]byte, 223)
	copy(data, "managed-retention memory")
	cw, _ := code.Encode(data)
	for i := 0; i < 10; i++ { // corrupt 10 of the 255 symbols
		cw[i*7] ^= 0x5a
	}
	got, corrected, err := code.Decode(cw)
	fmt.Printf("corrected=%d err=%v payload=%q\n", corrected, err, got[:24])
	// Output: corrected=10 err=<nil> payload="managed-retention memory"
}

// How much raw bit-error rate can codes of equal overhead absorb at a
// target UBER? Longer blocks win (the paper's §4 / ref [8]).
func ExampleCodeSpec_MaxBERForUBER() {
	small := ecc.RSSpec(63, 55)
	large := ecc.RSSpec(255, 223)
	ratio := large.MaxBERForUBER(1e-18) / small.MaxBERForUBER(1e-18)
	fmt.Printf("RS(255,223) tolerates %.0fx the raw BER of RS(63,55)\n", ratio)
	// Output: RS(255,223) tolerates 115x the raw BER of RS(63,55)
}
