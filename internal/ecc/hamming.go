// Package ecc implements the error-correction substrate for the MRM
// simulator: a Hamming(72,64) SECDED code (the classic DRAM sideband code),
// a Reed–Solomon code over GF(2^8) with a full Berlekamp–Massey decoder
// (the large-block code family the paper's §4 proposes for MRM), reliability
// analysis (code rate vs block size vs uncorrectable-bit-error rate), and a
// retention-aware scrub planner.
package ecc

import (
	"errors"
	"math/bits"
)

// Hamming72/64 encodes a 64-bit word into 72 bits: 8 parity bits provide
// single-error correction and double-error detection (SECDED). The layout is
// the textbook one: codeword positions 1..72, parity bits at positions
// 1,2,4,8,16,32,64 plus an overall parity at position 0.

// ErrDoubleBit reports an uncorrectable double-bit error.
var ErrDoubleBit = errors.New("ecc: double-bit error detected")

// HammingCodeword is a 72-bit SECDED codeword (stored in the low 72 bits).
type HammingCodeword struct {
	// Lo holds codeword bits 0..63, Hi holds bits 64..71.
	Lo uint64
	Hi uint8
}

func (c HammingCodeword) bit(i uint) uint {
	if i < 64 {
		return uint(c.Lo>>i) & 1
	}
	return uint(c.Hi>>(i-64)) & 1
}

func (c *HammingCodeword) setBit(i, v uint) {
	if i < 64 {
		c.Lo = c.Lo&^(1<<i) | uint64(v&1)<<i
	} else {
		c.Hi = c.Hi&^(1<<(i-64)) | uint8(v&1)<<(i-64)
	}
}

// FlipBit toggles codeword bit i (0..71); used by tests and fault injection.
func (c *HammingCodeword) FlipBit(i uint) {
	if i >= 72 {
		panic("ecc: bit index out of range")
	}
	c.setBit(i, c.bit(i)^1)
}

// dataPositions lists the codeword positions (1-based within the Hamming
// numbering, stored at index+1 here) that hold data bits: every position in
// 1..72 that is not a power of two, excluding position 0 (overall parity).
var dataPositions = func() []uint {
	var ps []uint
	for p := uint(1); len(ps) < 64; p++ {
		if p&(p-1) != 0 { // not a power of two
			ps = append(ps, p)
		}
	}
	return ps
}()

// HammingEncode encodes a 64-bit word.
func HammingEncode(data uint64) HammingCodeword {
	var c HammingCodeword
	// Scatter data bits into non-power-of-two positions (position p maps to
	// storage bit p, with storage bit 0 reserved for overall parity).
	for i, p := range dataPositions {
		c.setBit(p, uint(data>>uint(i))&1)
	}
	// Compute the 7 Hamming parity bits.
	for k := uint(0); k < 7; k++ {
		pp := uint(1) << k
		parity := uint(0)
		for p := uint(1); p < 72; p++ {
			if p&pp != 0 && p != pp {
				parity ^= c.bit(p)
			}
		}
		c.setBit(pp, parity)
	}
	// Overall parity over all 72 bits.
	all := uint(bits.OnesCount64(c.Lo)+bits.OnesCount8(c.Hi)) & 1
	c.setBit(0, c.bit(0)^all) // bit 0 currently 0; set so total parity is even
	return c
}

// syndrome returns the Hamming syndrome (the XOR of the positions of bits
// failing parity) and the overall parity of the received word.
func (c HammingCodeword) syndrome() (syn uint, parity uint) {
	for p := uint(1); p < 72; p++ {
		if c.bit(p) == 1 {
			syn ^= p
		}
	}
	par := uint(bits.OnesCount64(c.Lo)+bits.OnesCount8(c.Hi)) & 1
	return syn, par
}

// HammingDecode decodes a codeword, correcting up to one flipped bit.
// It returns the data word, the number of corrected bits (0 or 1), or
// ErrDoubleBit when two bit errors are detected.
func HammingDecode(c HammingCodeword) (data uint64, corrected int, err error) {
	syn, par := c.syndrome()
	switch {
	case syn == 0 && par == 0:
		// clean
	case par == 1:
		// Odd number of errors: single-bit error. If syn==0 the flipped bit
		// is the overall parity bit itself.
		c.setBit(syn, c.bit(syn)^1)
		corrected = 1
	default:
		// Even error count with nonzero syndrome: double-bit error.
		return 0, 0, ErrDoubleBit
	}
	for i, p := range dataPositions {
		data |= uint64(c.bit(p)) << uint(i)
	}
	return data, corrected, nil
}

// HammingOverhead is the storage overhead of the (72,64) code.
const HammingOverhead = 8.0 / 72.0
