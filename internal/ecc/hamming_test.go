package ecc

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestHammingRoundTrip(t *testing.T) {
	for _, d := range []uint64{0, 1, 0xdeadbeefcafebabe, ^uint64(0), 0x5555555555555555} {
		cw := HammingEncode(d)
		got, n, err := HammingDecode(cw)
		if err != nil || n != 0 || got != d {
			t.Errorf("round trip %#x: got %#x, corrected %d, err %v", d, got, n, err)
		}
	}
}

func TestHammingCorrectsEverySingleBit(t *testing.T) {
	d := uint64(0x0123456789abcdef)
	for i := uint(0); i < 72; i++ {
		cw := HammingEncode(d)
		cw.FlipBit(i)
		got, n, err := HammingDecode(cw)
		if err != nil {
			t.Fatalf("bit %d: unexpected error %v", i, err)
		}
		if n != 1 {
			t.Fatalf("bit %d: corrected %d bits, want 1", i, n)
		}
		if got != d {
			t.Fatalf("bit %d: data %#x, want %#x", i, got, d)
		}
	}
}

func TestHammingDetectsEveryDoubleBit(t *testing.T) {
	d := uint64(0xfeedface12345678)
	// All pairs is 72*71/2 = 2556 cases; cheap enough to run exhaustively.
	for i := uint(0); i < 72; i++ {
		for j := i + 1; j < 72; j++ {
			cw := HammingEncode(d)
			cw.FlipBit(i)
			cw.FlipBit(j)
			if _, _, err := HammingDecode(cw); !errors.Is(err, ErrDoubleBit) {
				t.Fatalf("bits (%d,%d): double error not detected (err=%v)", i, j, err)
			}
		}
	}
}

func TestHammingFlipBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var cw HammingCodeword
	cw.FlipBit(72)
}

func TestHammingOverhead(t *testing.T) {
	if HammingOverhead <= 0.11 || HammingOverhead >= 0.12 {
		t.Fatalf("overhead = %v", HammingOverhead)
	}
}

// Property: encode/decode is the identity for random words.
func TestHammingRoundTripProperty(t *testing.T) {
	f := func(d uint64) bool {
		got, n, err := HammingDecode(HammingEncode(d))
		return err == nil && n == 0 && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single flipped bit is corrected back for random words.
func TestHammingSingleBitProperty(t *testing.T) {
	f := func(d uint64, bit uint8) bool {
		cw := HammingEncode(d)
		cw.FlipBit(uint(bit) % 72)
		got, n, err := HammingDecode(cw)
		return err == nil && n == 1 && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
