package ecc

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrUnreachableTarget reports that no scrub schedule can hold the requested
// UBER target: the code is too weak for the target outright, or the data's
// raw BER is over budget from the moment it is written. Callers (the fault
// layer, sweep drivers) branch with errors.Is to separate "this design point
// is infeasible" from genuine planner failures.
var ErrUnreachableTarget = errors.New("ecc: UBER target unreachable")

// CodeSpec abstractly describes a block code for reliability analysis
// without instantiating a codec: N symbols per codeword, K of them data,
// SymbolBits bits per symbol, correcting T symbol errors.
type CodeSpec struct {
	N, K       int
	SymbolBits int
	T          int
}

// RSSpec describes an RS(n,k) over GF(2^8).
func RSSpec(n, k int) CodeSpec {
	return CodeSpec{N: n, K: k, SymbolBits: 8, T: (n - k) / 2}
}

// HammingSpec describes the (72,64) SECDED code (T=1 over bit symbols).
func HammingSpec() CodeSpec { return CodeSpec{N: 72, K: 64, SymbolBits: 1, T: 1} }

// Overhead is the parity fraction of the stored bits.
func (c CodeSpec) Overhead() float64 { return float64(c.N-c.K) / float64(c.N) }

// DataBits returns the payload bits per codeword.
func (c CodeSpec) DataBits() int { return c.K * c.SymbolBits }

// SymbolErrorProb converts a raw bit error rate into the probability that a
// symbol is corrupted (any of its bits flipped).
func (c CodeSpec) SymbolErrorProb(ber float64) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	// 1 - (1-ber)^bits, computed stably.
	return -math.Expm1(float64(c.SymbolBits) * math.Log1p(-ber))
}

// CodewordFailureProb returns the probability that a codeword has more than
// T symbol errors, i.e. is uncorrectable, given a raw bit error rate.
// Computed as a binomial tail in log space for numerical stability.
func (c CodeSpec) CodewordFailureProb(ber float64) float64 {
	p := c.SymbolErrorProb(ber)
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	// P(X > T) = 1 - sum_{i=0}^{T} C(N,i) p^i (1-p)^(N-i).
	// Sum the head in log space; if the head is ~1 use the complement of the
	// largest tail terms instead to avoid cancellation.
	logP, logQ := math.Log(p), math.Log1p(-p)
	head := 0.0
	for i := 0; i <= c.T && i <= c.N; i++ {
		head += math.Exp(logChoose(c.N, i) + float64(i)*logP + float64(c.N-i)*logQ)
	}
	if head < 0.5 {
		return 1 - head
	}
	tail := 0.0
	for i := c.T + 1; i <= c.N; i++ {
		term := math.Exp(logChoose(c.N, i) + float64(i)*logP + float64(c.N-i)*logQ)
		tail += term
		if term < tail*1e-16 && i > c.T+3 {
			break
		}
	}
	return tail
}

// UBER returns the uncorrectable bit error rate: uncorrectable-codeword
// events per data bit read.
func (c CodeSpec) UBER(ber float64) float64 {
	return c.CodewordFailureProb(ber) / float64(c.DataBits())
}

// logChoose returns log C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// maxBERCache memoizes MaxBERForUBER. The inversion runs a 100-iteration
// bisection with binomial-tail evaluations at every step, and callers (device
// fault arming, scrub planning, sweep drivers) invert the same handful of
// (code, target) pairs over and over. CodeSpec is a comparable value type, so
// it keys a map directly; the cached result is the exact float the bisection
// produces, so memoization never changes a computed number.
var maxBERCache sync.Map // maxBERKey -> float64

type maxBERKey struct {
	code   CodeSpec
	target float64
}

// MaxBERForUBER returns the highest raw BER the code tolerates while keeping
// UBER at or below target (bisection over [1e-15, 0.5]). Results are
// memoized per (code, target); the inversion is a pure function of both.
func (c CodeSpec) MaxBERForUBER(target float64) float64 {
	key := maxBERKey{code: c, target: target}
	if v, ok := maxBERCache.Load(key); ok {
		return v.(float64)
	}
	lo, hi := 1e-15, 0.5
	if c.UBER(lo) > target {
		maxBERCache.Store(key, 0.0)
		return 0
	}
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over decades
		if c.UBER(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	maxBERCache.Store(key, lo)
	return lo
}

// ScrubPlan is the output of the retention-aware scrub planner: how often
// data must be re-read (and rewritten if degraded) so the code's UBER target
// holds, and what that costs.
type ScrubPlan struct {
	Interval      time.Duration // scrub period; 0 means "no scrub needed within horizon"
	MaxBER        float64       // the BER ceiling the code can absorb
	ScrubsPerYear float64
}

// PlanScrub computes the scrub interval for data protected by code c whose
// raw BER over time is given by berAt (monotone non-decreasing), with the
// given UBER target, up to horizon. If the BER at the horizon stays within
// the code's budget, no scrubbing is needed.
func PlanScrub(c CodeSpec, berAt func(time.Duration) float64, uberTarget float64, horizon time.Duration) (ScrubPlan, error) {
	maxBER := c.MaxBERForUBER(uberTarget)
	if maxBER <= 0 {
		return ScrubPlan{}, fmt.Errorf("code %dx%d cannot meet UBER %g at any BER: %w", c.N, c.K, uberTarget, ErrUnreachableTarget)
	}
	if berAt(0) > maxBER {
		return ScrubPlan{}, fmt.Errorf("fresh-data BER %g already above budget %g: %w", berAt(0), maxBER, ErrUnreachableTarget)
	}
	if berAt(horizon) <= maxBER {
		return ScrubPlan{MaxBER: maxBER}, nil
	}
	// Bisect the first time BER crosses the budget.
	lo, hi := time.Duration(0), horizon
	for i := 0; i < 64 && hi-lo > time.Millisecond; i++ {
		mid := lo + (hi-lo)/2
		if berAt(mid) <= maxBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo <= 0 {
		return ScrubPlan{}, fmt.Errorf("BER crosses budget immediately: %w", ErrUnreachableTarget)
	}
	return ScrubPlan{
		Interval:      lo,
		MaxBER:        maxBER,
		ScrubsPerYear: (365 * 24 * time.Hour).Seconds() / lo.Seconds(),
	}, nil
}
