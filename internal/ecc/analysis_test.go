package ecc

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestSymbolErrorProb(t *testing.T) {
	c := RSSpec(255, 223)
	if got := c.SymbolErrorProb(0); got != 0 {
		t.Fatalf("p(0) = %v", got)
	}
	if got := c.SymbolErrorProb(1); got != 1 {
		t.Fatalf("p(1) = %v", got)
	}
	// Small BER: p_sym ≈ 8*ber.
	got := c.SymbolErrorProb(1e-9)
	if math.Abs(got-8e-9)/8e-9 > 1e-6 {
		t.Fatalf("p_sym(1e-9) = %g, want ~8e-9", got)
	}
}

func TestCodewordFailureProbLimits(t *testing.T) {
	c := RSSpec(255, 223)
	if c.CodewordFailureProb(0) != 0 {
		t.Fatal("zero BER must never fail")
	}
	if c.CodewordFailureProb(1) != 1 {
		t.Fatal("BER 1 must always fail")
	}
	// Monotone in BER.
	prev := 0.0
	for _, ber := range []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-1} {
		p := c.CodewordFailureProb(ber)
		if p < prev {
			t.Fatalf("failure prob not monotone at %g: %g < %g", ber, p, prev)
		}
		prev = p
	}
}

// The paper's §4 / ref [8] claim: at equal overhead, a longer code sustains a
// higher raw BER for the same UBER target.
func TestLargerBlocksWinAtEqualOverhead(t *testing.T) {
	small := RSSpec(63, 55)   // 12.7% overhead, t=4
	large := RSSpec(255, 223) // 12.5% overhead, t=16
	target := 1e-18
	bSmall := small.MaxBERForUBER(target)
	bLarge := large.MaxBERForUBER(target)
	if bLarge <= bSmall {
		t.Fatalf("RS(255,223) budget %g should beat RS(63,55) %g", bLarge, bSmall)
	}
	if bLarge/bSmall < 2 {
		t.Errorf("expected a substantial (>2x) BER budget win, got %g", bLarge/bSmall)
	}
}

func TestHammingSpecWeakerThanRS(t *testing.T) {
	h := HammingSpec()
	rs := RSSpec(255, 223)
	target := 1e-18
	if h.MaxBERForUBER(target) >= rs.MaxBERForUBER(target) {
		t.Fatal("SECDED should tolerate less raw BER than RS(255,223)")
	}
}

func TestUBERScalesWithFailureProb(t *testing.T) {
	c := RSSpec(255, 223)
	ber := 1e-3
	if got, want := c.UBER(ber), c.CodewordFailureProb(ber)/float64(c.DataBits()); got != want {
		t.Fatalf("UBER = %g, want %g", got, want)
	}
}

func TestMaxBERForUBERConsistency(t *testing.T) {
	c := RSSpec(255, 223)
	target := 1e-15
	b := c.MaxBERForUBER(target)
	if b <= 0 {
		t.Fatal("budget should be positive")
	}
	if c.UBER(b) > target*1.01 {
		t.Fatalf("UBER at budget %g is %g > target %g", b, c.UBER(b), target)
	}
	if c.UBER(b*3) < target {
		t.Fatalf("budget %g not tight: 3x higher BER still meets target", b)
	}
}

func TestPlanScrubNoScrubNeeded(t *testing.T) {
	c := RSSpec(255, 223)
	flat := func(time.Duration) float64 { return 1e-9 }
	plan, err := PlanScrub(c, flat, 1e-18, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Interval != 0 {
		t.Fatalf("flat low BER should need no scrub, got %v", plan.Interval)
	}
}

func TestPlanScrubFindsCrossing(t *testing.T) {
	c := RSSpec(255, 223)
	// BER ramps linearly to 1e-2 over 10 hours: crosses any sane budget.
	ramp := func(d time.Duration) float64 { return 1e-9 + 1e-2*d.Hours()/10 }
	plan, err := PlanScrub(c, ramp, 1e-18, 10*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Interval <= 0 || plan.Interval >= 10*time.Hour {
		t.Fatalf("interval = %v", plan.Interval)
	}
	// The BER at the planned interval must be within budget.
	if ramp(plan.Interval) > plan.MaxBER*1.001 {
		t.Fatalf("BER at interval %g exceeds budget %g", ramp(plan.Interval), plan.MaxBER)
	}
	if plan.ScrubsPerYear <= 0 {
		t.Fatal("scrubs/year should be positive")
	}
}

func TestPlanScrubErrors(t *testing.T) {
	c := RSSpec(255, 223)
	high := func(time.Duration) float64 { return 0.4 }
	if _, err := PlanScrub(c, high, 1e-18, time.Hour); err == nil {
		t.Fatal("fresh BER above budget should error")
	}
}

func TestPlanScrubUnreachableTargetIsTyped(t *testing.T) {
	c := RSSpec(255, 223)
	// Every PlanScrub failure mode is the same condition — the code cannot
	// hit the UBER target — and callers branch on it with errors.Is.
	cases := map[string]func() error{
		"fresh BER above budget": func() error {
			high := func(time.Duration) float64 { return 0.4 }
			_, err := PlanScrub(c, high, 1e-18, time.Hour)
			return err
		},
		"impossible target": func() error {
			flat := func(time.Duration) float64 { return 1e-9 }
			_, err := PlanScrub(c, flat, 0, time.Hour)
			return err
		},
	}
	for name, run := range cases {
		err := run()
		if err == nil {
			t.Errorf("%s: want error", name)
			continue
		}
		if !errors.Is(err, ErrUnreachableTarget) {
			t.Errorf("%s: error %v does not wrap ErrUnreachableTarget", name, err)
		}
	}
	// A planable configuration must NOT carry the sentinel.
	flat := func(time.Duration) float64 { return 1e-9 }
	if _, err := PlanScrub(c, flat, 1e-18, time.Hour); errors.Is(err, ErrUnreachableTarget) || err != nil {
		t.Fatalf("healthy plan errored: %v", err)
	}
}

func TestLogChoose(t *testing.T) {
	// C(5,2) = 10.
	if got := math.Exp(logChoose(5, 2)); math.Abs(got-10) > 1e-9 {
		t.Fatalf("C(5,2) = %v", got)
	}
	if !math.IsInf(logChoose(5, 6), -1) {
		t.Fatal("C(5,6) should be -Inf in log space")
	}
}
