package ecc

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code RS(n, k) over GF(2^8): k data bytes
// are followed by n-k parity bytes, correcting up to (n-k)/2 byte errors per
// codeword. n must be at most 255.
type RS struct {
	n, k int
	gen  []byte // generator polynomial, highest degree first
}

// ErrUncorrectable reports more errors than the code can correct.
var ErrUncorrectable = errors.New("ecc: uncorrectable codeword")

// NewRS builds an RS(n, k) code. It returns an error unless
// 0 < k < n <= 255 and n-k is even (so t = (n-k)/2 is whole).
func NewRS(n, k int) (*RS, error) {
	if n > 255 || k <= 0 || k >= n {
		return nil, fmt.Errorf("ecc: invalid RS(%d,%d)", n, k)
	}
	if (n-k)%2 != 0 {
		return nil, fmt.Errorf("ecc: RS(%d,%d) parity count must be even", n, k)
	}
	// Generator g(x) = prod_{i=0}^{n-k-1} (x - alpha^i).
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		gen = polyMul(gen, []byte{1, gfPow(i)})
	}
	return &RS{n: n, k: k, gen: gen}, nil
}

// N returns the codeword length in symbols.
func (r *RS) N() int { return r.n }

// K returns the data length in symbols.
func (r *RS) K() int { return r.k }

// T returns the number of correctable symbol errors.
func (r *RS) T() int { return (r.n - r.k) / 2 }

// Overhead returns the fraction of the codeword that is parity.
func (r *RS) Overhead() float64 { return float64(r.n-r.k) / float64(r.n) }

// Encode appends n-k parity bytes to the k data bytes and returns the
// codeword. data must be exactly k bytes.
func (r *RS) Encode(data []byte) ([]byte, error) {
	if len(data) != r.k {
		return nil, fmt.Errorf("ecc: Encode wants %d bytes, got %d", r.k, len(data))
	}
	cw := make([]byte, r.n)
	copy(cw, data)
	// Systematic encoding: remainder of data(x)*x^(n-k) divided by g(x).
	rem := make([]byte, r.n-r.k)
	for _, d := range data {
		factor := d ^ rem[0]
		copy(rem, rem[1:])
		rem[len(rem)-1] = 0
		if factor != 0 {
			for j := 1; j < len(r.gen); j++ {
				rem[j-1] ^= gfMul(r.gen[j], factor)
			}
		}
	}
	copy(cw[r.k:], rem)
	return cw, nil
}

// syndromes computes the 2t syndromes of a received codeword; allZero
// reports whether the word is (apparently) clean.
func (r *RS) syndromes(cw []byte) (syn []byte, allZero bool) {
	nsyn := r.n - r.k
	syn = make([]byte, nsyn)
	allZero = true
	for i := 0; i < nsyn; i++ {
		syn[i] = polyEval(cw, gfPow(i))
		if syn[i] != 0 {
			allZero = false
		}
	}
	return syn, allZero
}

// Decode corrects up to T() byte errors in place and returns the data bytes
// along with the number of corrected symbols. It returns ErrUncorrectable if
// the error count exceeds the code's capability.
func (r *RS) Decode(cw []byte) (data []byte, corrected int, err error) {
	if len(cw) != r.n {
		return nil, 0, fmt.Errorf("ecc: Decode wants %d bytes, got %d", r.n, len(cw))
	}
	syn, clean := r.syndromes(cw)
	if clean {
		return cw[:r.k], 0, nil
	}
	// Berlekamp–Massey: find the error-locator polynomial sigma
	// (lowest degree first here).
	sigma := []byte{1}
	prev := []byte{1}
	var l, m = 0, 1
	var b byte = 1
	for i := 0; i < len(syn); i++ {
		var d byte = syn[i]
		for j := 1; j <= l; j++ {
			if j < len(sigma) {
				d ^= gfMul(sigma[j], syn[i-j])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := make([]byte, len(sigma))
			copy(tmp, sigma)
			coef := gfDiv(d, b)
			sigma = polyAddShift(sigma, prev, coef, m)
			l = i + 1 - l
			prev = tmp
			b = d
			m = 1
		} else {
			coef := gfDiv(d, b)
			sigma = polyAddShift(sigma, prev, coef, m)
			m++
		}
	}
	numErrs := l
	if numErrs > r.T() {
		return nil, 0, ErrUncorrectable
	}
	// Chien search: roots of sigma give error locations. Position j in the
	// codeword (0 = first byte transmitted) corresponds to alpha^(n-1-j).
	var errPos []int
	for j := 0; j < r.n; j++ {
		xinv := gfPow(-(r.n - 1 - j))
		var v byte
		for deg := len(sigma) - 1; deg >= 0; deg-- {
			v = gfMul(v, xinv) ^ sigma[deg]
		}
		if v == 0 {
			errPos = append(errPos, j)
		}
	}
	if len(errPos) != numErrs {
		return nil, 0, ErrUncorrectable
	}
	// Forney: error magnitudes. Build the error-evaluator polynomial
	// omega(x) = [S(x) * sigma(x)] mod x^(2t), with S lowest-degree-first.
	omega := make([]byte, len(syn))
	for i := range omega {
		var v byte
		for j := 0; j <= i && j < len(sigma); j++ {
			v ^= gfMul(sigma[j], syn[i-j])
		}
		omega[i] = v
	}
	// sigma' (formal derivative): odd-degree coefficients only.
	for _, pos := range errPos {
		xinv := gfPow(-(r.n - 1 - pos)) // X_i^{-1}
		// omega(X_i^{-1})
		var om byte
		for deg := len(omega) - 1; deg >= 0; deg-- {
			om = gfMul(om, xinv) ^ omega[deg]
		}
		// sigma'(X_i^{-1}) = sum over odd i of sigma[i] * x^(i-1)
		var sp byte
		for d := 1; d < len(sigma); d += 2 {
			term := sigma[d]
			for p := 0; p < d-1; p++ {
				term = gfMul(term, xinv)
			}
			sp ^= term
		}
		if sp == 0 {
			return nil, 0, ErrUncorrectable
		}
		// With consecutive roots starting at alpha^0 (b=0), Forney picks up
		// a factor X_i = alpha^(n-1-pos).
		mag := gfMul(gfPow(r.n-1-pos), gfDiv(om, sp))
		cw[pos] ^= mag
		corrected++
	}
	// Verify the correction took.
	if _, ok := r.syndromes(cw); !ok {
		return nil, 0, ErrUncorrectable
	}
	return cw[:r.k], corrected, nil
}

// polyAddShift returns a + coef * b * x^shift where polynomials are
// lowest-degree-first.
func polyAddShift(a, b []byte, coef byte, shift int) []byte {
	out := make([]byte, max(len(a), len(b)+shift))
	copy(out, a)
	for i, c := range b {
		out[i+shift] ^= gfMul(c, coef)
	}
	// Trim trailing zeros but keep at least degree 0.
	for len(out) > 1 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}
